// Tests of the morsel-parallel GRACE executor and the §7.5 two-step
// cache-partitioning fixes:
//  - ThreadPool correctness (all tasks run, stealing drains queues).
//  - Parallel partition phase produces exactly the serial partitions.
//  - Join determinism: identical output counts for num_threads 1/2/8
//    across all four schemes, on uniform and Zipf-skewed workloads.
//  - Per-worker sim-stat merging is exact (workers sum to the merged
//    phase totals).
//  - Two-step sub-partitioning divides by the first-level partition
//    count, so sub-partitions stay balanced even when the two level
//    counts share a common factor.

#include <atomic>
#include <cstring>
#include <map>
#include <numeric>

#include "gtest/gtest.h"
#include "hash/hash_table.h"
#include "join/grace.h"
#include "mem/memory_model.h"
#include "simcache/memory_sim.h"
#include "util/thread_pool.h"
#include "workload/generator.h"

namespace hashjoin {
namespace {

// ---------- ThreadPool ----------

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<uint64_t> sum{0};
  for (uint64_t i = 1; i <= 1000; ++i) {
    pool.Submit([&sum, i](uint32_t) { sum.fetch_add(i); });
  }
  pool.Wait();
  EXPECT_EQ(sum.load(), 1000ull * 1001 / 2);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossRounds) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count](uint32_t) { count.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), (round + 1) * 50);
  }
}

TEST(ThreadPoolTest, WorkerIdsAreInRange) {
  ThreadPool pool(4);
  std::atomic<uint32_t> bad{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&bad](uint32_t wid) {
      if (wid >= 4) bad.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(bad.load(), 0u);
}

TEST(ThreadPoolTest, SubmitFromInsideTask) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&](uint32_t) {
      count.fetch_add(1);
      pool.Submit([&count](uint32_t) { count.fetch_add(1); });
    });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 20);
}

// ---------- Parallel partition phase ----------

uint32_t KeyOf(const uint8_t* t) {
  uint32_t k;
  std::memcpy(&k, t, 4);
  return k;
}

std::map<uint32_t, int> KeyHistogram(const Relation& r) {
  std::map<uint32_t, int> h;
  r.ForEachTuple([&](const uint8_t* t, uint16_t, uint32_t) { h[KeyOf(t)]++; });
  return h;
}

TEST(ParallelPartitionTest, MatchesSerialPartitions) {
  Relation input = GenerateSourceRelation(30000, 20, 13);
  GraceConfig config;
  config.page_size = 1024;
  PartitionPlan plan = PlanPartitionPasses(12, 0);
  RealMemory mm;

  std::vector<Relation> serial;
  PartitionWithPlan(mm, config, input, plan, &serial);

  PoolExecutor pool(4u);
  WorkerMemorySet<RealMemory> wmem(mm, 4);
  std::vector<Relation> parallel;
  PartitionWithPlan(mm, config, input, plan, &parallel, &pool, &wmem);

  ASSERT_EQ(parallel.size(), serial.size());
  for (size_t p = 0; p < serial.size(); ++p) {
    EXPECT_EQ(parallel[p].num_tuples(), serial[p].num_tuples());
    EXPECT_EQ(KeyHistogram(parallel[p]), KeyHistogram(serial[p]));
  }
}

TEST(ParallelPartitionTest, MultiPassMatchesSerial) {
  Relation input = GenerateSourceRelation(20000, 20, 31);
  GraceConfig config;
  config.page_size = 1024;
  PartitionPlan plan = PlanPartitionPasses(35, 6);  // 6x6 two-pass plan
  ASSERT_TRUE(plan.MultiPass());
  RealMemory mm;

  std::vector<Relation> serial;
  PartitionWithPlan(mm, config, input, plan, &serial);

  PoolExecutor pool(3u);
  WorkerMemorySet<RealMemory> wmem(mm, 3);
  std::vector<Relation> parallel;
  PartitionWithPlan(mm, config, input, plan, &parallel, &pool, &wmem);

  ASSERT_EQ(parallel.size(), serial.size());
  for (size_t p = 0; p < serial.size(); ++p) {
    EXPECT_EQ(KeyHistogram(parallel[p]), KeyHistogram(serial[p]));
  }
}

// ---------- Determinism across thread counts ----------

struct ThreadedCase {
  Scheme scheme;
  bool skewed;
};

class ThreadedJoinDeterminism
    : public ::testing::TestWithParam<ThreadedCase> {};

TEST_P(ThreadedJoinDeterminism, SameOutputForAnyThreadCount) {
  const ThreadedCase& c = GetParam();
  if (!SchemeAvailable(c.scheme)) GTEST_SKIP();
  Relation build = c.skewed
                       ? GenerateSkewedRelation(12000, 20, 0.9, 3000, 17)
                       : GenerateSourceRelation(12000, 20, 17);
  Relation probe = c.skewed
                       ? GenerateSkewedRelation(24000, 20, 0.9, 3000, 23)
                       : GenerateSourceRelation(24000, 20, 23);

  GraceConfig config;
  config.partition_scheme = c.scheme;
  config.join_scheme = c.scheme;
  config.forced_num_partitions = 8;
  config.page_size = 2048;

  uint64_t expected_outputs = 0;
  uint64_t expected_materialized = 0;
  for (uint32_t threads : {1u, 2u, 8u}) {
    config.num_threads = threads;
    RealMemory mm;
    Relation out(ConcatSchema(build.schema(), probe.schema()),
                 config.page_size);
    JoinResult r = GraceHashJoin(mm, build, probe, config, &out);
    EXPECT_EQ(r.partition_phase.tuples_processed,
              build.num_tuples() + probe.num_tuples());
    EXPECT_EQ(r.join_phase.tuples_processed,
              build.num_tuples() + probe.num_tuples());
    if (threads == 1) {
      expected_outputs = r.output_tuples;
      expected_materialized = out.num_tuples();
    } else {
      EXPECT_EQ(r.output_tuples, expected_outputs)
          << "threads=" << threads;
      EXPECT_EQ(out.num_tuples(), expected_materialized)
          << "threads=" << threads;
    }
    EXPECT_EQ(out.num_tuples(), r.output_tuples);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, ThreadedJoinDeterminism,
    ::testing::Values(ThreadedCase{Scheme::kBaseline, false},
                      ThreadedCase{Scheme::kSimple, false},
                      ThreadedCase{Scheme::kGroup, false},
                      ThreadedCase{Scheme::kSwp, false},
                      ThreadedCase{Scheme::kBaseline, true},
                      ThreadedCase{Scheme::kSimple, true},
                      ThreadedCase{Scheme::kGroup, true},
                      ThreadedCase{Scheme::kSwp, true},
                      ThreadedCase{Scheme::kCoro, false},
                      ThreadedCase{Scheme::kCoro, true}),
    [](const auto& info) {
      return std::string(SchemeName(info.param.scheme)) +
             (info.param.skewed ? "_skewed" : "_uniform");
    });

TEST(ThreadedJoinDeterminism, CorrectCountsOnGeneratedWorkload) {
  WorkloadSpec spec;
  spec.num_build_tuples = 20000;
  spec.tuple_size = 20;
  spec.matches_per_build = 2.0;
  JoinWorkload w = GenerateJoinWorkload(spec);
  GraceConfig config;
  config.forced_num_partitions = 8;
  config.page_size = 2048;
  for (uint32_t threads : {1u, 2u, 8u}) {
    config.num_threads = threads;
    RealMemory mm;
    JoinResult r = GraceHashJoin(mm, w.build, w.probe, config, nullptr);
    EXPECT_EQ(r.output_tuples, w.expected_matches) << "threads=" << threads;
  }
}

// ---------- Per-worker simulation accounting ----------

TEST(ThreadedSimTest, WorkerStatsSumToMergedPhaseStats) {
  WorkloadSpec spec;
  spec.num_build_tuples = 6000;
  spec.tuple_size = 20;
  JoinWorkload w = GenerateJoinWorkload(spec);
  GraceConfig config;
  config.forced_num_partitions = 6;
  config.page_size = 2048;
  config.num_threads = 3;

  sim::SimConfig cfg;
  sim::MemorySim simulator(cfg);
  SimMemory mm(&simulator);
  JoinResult r = GraceHashJoin(mm, w.build, w.probe, config, nullptr);
  EXPECT_EQ(r.output_tuples, w.expected_matches);

  // The join phase ran entirely on the workers; the merged phase window
  // must equal the sum of the per-worker counters, cycle for cycle.
  ASSERT_EQ(r.per_thread_join_sim.size(), 3u);
  sim::SimStats sum;
  for (const auto& s : r.per_thread_join_sim) sum += s;
  EXPECT_EQ(sum.busy_cycles, r.join_phase.sim.busy_cycles);
  EXPECT_EQ(sum.dcache_stall_cycles, r.join_phase.sim.dcache_stall_cycles);
  EXPECT_EQ(sum.DemandLineAccesses(),
            r.join_phase.sim.DemandLineAccesses());
  EXPECT_GT(sum.TotalCycles(), 0u);

  // Same join on one thread: the simulated totals must be in the same
  // ballpark (identical work, different per-core cache state), and the
  // partition phase must have accounted the same tuple count.
  config.num_threads = 1;
  sim::MemorySim serial_sim(cfg);
  SimMemory serial_mm(&serial_sim);
  JoinResult serial = GraceHashJoin(serial_mm, w.build, w.probe, config,
                                    nullptr);
  EXPECT_EQ(serial.output_tuples, r.output_tuples);
  EXPECT_EQ(serial.join_phase.tuples_processed,
            r.join_phase.tuples_processed);
  EXPECT_TRUE(serial.per_thread_join_sim.empty());
}

// ---------- Two-step cache partitioning regressions ----------

// Budget that makes ComputeNumPartitions yield exactly `want` parts for
// this relation (ceil division inverted).
uint64_t BudgetForParts(const Relation& r, uint32_t want) {
  uint64_t total =
      r.data_bytes() + HashTable::EstimateBytes(r.num_tuples());
  uint64_t budget = (total + want - 1) / want;
  while (ComputeNumPartitions(r.num_tuples(), r.data_bytes(), budget) >
         want) {
    ++budget;
  }
  return budget;
}

class TwoStepSubPartitionTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(TwoStepSubPartitionTest, SubPartitionsBalancedAndComplete) {
  const uint32_t sub_parts_wanted = GetParam();
  const uint32_t num_parts = 4;
  WorkloadSpec spec;
  spec.num_build_tuples = 24000;
  spec.tuple_size = 20;
  JoinWorkload w = GenerateJoinWorkload(spec);

  GraceConfig config;
  config.page_size = 2048;
  RealMemory mm;

  // First-level partitions, as the partition phase makes them.
  PartitionPlan plan;
  plan.pass2 = num_parts;
  std::vector<Relation> build_parts, probe_parts;
  PartitionWithPlan(mm, config, w.build, plan, &build_parts);
  PartitionWithPlan(mm, config, w.probe, plan, &probe_parts);

  config.cache_mode = GraceConfig::CacheMode::kTwoStep;
  config.cache_budget = BudgetForParts(build_parts[0], sub_parts_wanted);

  std::vector<Relation> sub_build, sub_probe;
  uint32_t sub_parts = TwoStepSubPartition(mm, config, num_parts,
                                           build_parts[0], probe_parts[0],
                                           &sub_build, &sub_probe);
  ASSERT_EQ(sub_parts, sub_parts_wanted);

  // Regression: with the old `hash % sub_parts` split (no divisor), any
  // common factor between num_parts and sub_parts leaves sub-partitions
  // empty — e.g. 4 and 8 share factor 4, so 6 of 8 would be empty.
  uint64_t total_build = 0;
  uint64_t largest = 0;
  for (uint32_t s = 0; s < sub_parts; ++s) {
    EXPECT_GT(sub_build[s].num_tuples(), 0u) << "empty sub-partition " << s;
    total_build += sub_build[s].num_tuples();
    largest = std::max(largest, sub_build[s].num_tuples());
  }
  EXPECT_EQ(total_build, build_parts[0].num_tuples());
  // Balanced: the largest sub-partition stays near the uniform share.
  EXPECT_LT(largest, 2 * build_parts[0].num_tuples() / sub_parts + 64);

  // Sub-partition id must derive from the quotient on both relations.
  for (uint32_t s = 0; s < sub_parts; ++s) {
    auto check = [&](const Relation& r) {
      r.ForEachTuple([&](const uint8_t*, uint16_t, uint32_t hash) {
        ASSERT_EQ((hash / num_parts) % sub_parts, s);
      });
    };
    check(sub_build[s]);
    check(sub_probe[s]);
  }
}

// 8 shares a factor with num_parts = 4 (the regression); 7 is coprime.
INSTANTIATE_TEST_SUITE_P(CoprimeAndNot, TwoStepSubPartitionTest,
                         ::testing::Values(7u, 8u),
                         [](const auto& info) {
                           return "sub" + std::to_string(info.param);
                         });

class TwoStepJoinTest
    : public ::testing::TestWithParam<std::pair<uint32_t, uint32_t>> {};

TEST_P(TwoStepJoinTest, OutputMatchesOneStepPath) {
  const auto [num_parts, sub_parts] = GetParam();
  WorkloadSpec spec;
  spec.num_build_tuples = 24000;
  spec.tuple_size = 20;
  spec.matches_per_build = 2.0;
  JoinWorkload w = GenerateJoinWorkload(spec);

  GraceConfig config;
  config.page_size = 2048;
  config.forced_num_partitions = num_parts;
  RealMemory mm;

  // Reference: the one-step (kNone) path.
  JoinResult one_step = GraceHashJoin(mm, w.build, w.probe, config, nullptr);
  ASSERT_EQ(one_step.output_tuples, w.expected_matches);

  // Two-step cache path, sized to produce `sub_parts` sub-partitions of
  // the (evenly partitioned) first-level partitions.
  std::vector<Relation> parts;
  PartitionPlan plan;
  plan.pass2 = num_parts;
  PartitionWithPlan(mm, config, w.build, plan, &parts);
  config.cache_mode = GraceConfig::CacheMode::kTwoStep;
  config.cache_budget = BudgetForParts(parts[0], sub_parts);

  JoinResult two_step = GraceHashJoin(mm, w.build, w.probe, config, nullptr);
  EXPECT_EQ(two_step.output_tuples, w.expected_matches);
  EXPECT_EQ(two_step.output_tuples, one_step.output_tuples);

  // And the same under the parallel executor.
  config.num_threads = 4;
  JoinResult threaded = GraceHashJoin(mm, w.build, w.probe, config, nullptr);
  EXPECT_EQ(threaded.output_tuples, w.expected_matches);
}

INSTANTIATE_TEST_SUITE_P(
    CoprimeAndNot, TwoStepJoinTest,
    ::testing::Values(std::pair<uint32_t, uint32_t>{4u, 8u},
                      std::pair<uint32_t, uint32_t>{4u, 7u},
                      std::pair<uint32_t, uint32_t>{6u, 9u}),
    [](const auto& info) {
      return "p" + std::to_string(info.param.first) + "s" +
             std::to_string(info.param.second);
    });

// ---------- Relation::Absorb ----------

TEST(RelationAbsorbTest, MovesPagesAndCounts) {
  Relation a = GenerateSourceRelation(500, 20, 3);
  Relation b = GenerateSourceRelation(700, 20, 5);
  auto expected = KeyHistogram(a);
  for (const auto& [k, v] : KeyHistogram(b)) expected[k] += v;
  uint64_t bytes = a.data_bytes() + b.data_bytes();
  a.Absorb(&b);
  EXPECT_EQ(a.num_tuples(), 1200u);
  EXPECT_EQ(a.data_bytes(), bytes);
  EXPECT_EQ(b.num_tuples(), 0u);
  EXPECT_EQ(b.num_pages(), 0u);
  EXPECT_EQ(KeyHistogram(a), expected);
}

}  // namespace
}  // namespace hashjoin
