#include <cstring>
#include <map>

#include "gtest/gtest.h"
#include "join/aggregate_kernels.h"
#include "mem/memory_model.h"
#include "util/bitops.h"
#include "util/random.h"
#include "workload/generator.h"

namespace hashjoin {
namespace {

// Fact relation of (key, value, pad) rows with the given key range.
Relation MakeFacts(uint64_t tuples, uint64_t key_range, uint64_t seed) {
  Relation rel(Schema({{"key", AttrType::kInt32, 4},
                       {"value", AttrType::kInt64, 8},
                       {"pad", AttrType::kFixedChar, 4}}));
  Rng rng(seed);
  for (uint64_t i = 0; i < tuples; ++i) {
    uint8_t t[16] = {};
    uint32_t key = uint32_t(rng.NextBounded(key_range));
    int64_t value = rng.NextInRange(-50, 50);
    std::memcpy(t, &key, 4);
    std::memcpy(t + 4, &value, 8);
    rel.Append(t, sizeof(t), HashKey32(key));
  }
  return rel;
}

// Oracle aggregation with std::map.
std::map<uint32_t, std::pair<uint64_t, int64_t>> Oracle(
    const Relation& facts) {
  std::map<uint32_t, std::pair<uint64_t, int64_t>> m;
  facts.ForEachTuple([&](const uint8_t* t, uint16_t, uint32_t) {
    uint32_t key;
    int64_t value;
    std::memcpy(&key, t, 4);
    std::memcpy(&value, t + 4, 8);
    m[key].first += 1;
    m[key].second += value;
  });
  return m;
}

void ExpectMatchesOracle(const HashAggTable& agg, const Relation& facts) {
  auto oracle = Oracle(facts);
  ASSERT_EQ(agg.num_groups(), oracle.size());
  agg.ForEachGroup([&](const AggState& s) {
    auto it = oracle.find(s.key);
    ASSERT_NE(it, oracle.end()) << "unexpected group " << s.key;
    EXPECT_EQ(s.count, it->second.first) << "key " << s.key;
    EXPECT_EQ(s.sum, it->second.second) << "key " << s.key;
  });
}

class AggregateGroupSizeTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(AggregateGroupSizeTest, MatchesOracle) {
  Relation facts = MakeFacts(20000, 3000, 11);
  RealMemory mm;
  HashAggTable agg(NextRelativelyPrime(3000, 31));
  AggregateGroup(mm, facts, 4, &agg, GetParam());
  ExpectMatchesOracle(agg, facts);
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, AggregateGroupSizeTest,
                         ::testing::Values(1, 2, 7, 19, 64, 257));

TEST(AggregateBaselineTest, MatchesOracle) {
  Relation facts = MakeFacts(20000, 3000, 12);
  RealMemory mm;
  HashAggTable agg(NextRelativelyPrime(3000, 31));
  AggregateBaseline(mm, facts, 4, &agg);
  ExpectMatchesOracle(agg, facts);
}

TEST(AggregateTest, SingleGroupAllTuples) {
  Relation facts = MakeFacts(5000, 1, 13);
  RealMemory mm;
  HashAggTable agg(101);
  AggregateGroup(mm, facts, 4, &agg, 19);
  ASSERT_EQ(agg.num_groups(), 1u);
  agg.ForEachGroup([&](const AggState& s) {
    EXPECT_EQ(s.count, 5000u);
  });
}

TEST(AggregateTest, EveryTupleItsOwnGroup) {
  Relation rel(Schema({{"key", AttrType::kInt32, 4},
                       {"value", AttrType::kInt64, 8},
                       {"pad", AttrType::kFixedChar, 4}}));
  for (uint32_t i = 0; i < 2000; ++i) {
    uint8_t t[16] = {};
    int64_t v = 7;
    std::memcpy(t, &i, 4);
    std::memcpy(t + 4, &v, 8);
    rel.Append(t, sizeof(t), HashKey32(i));
  }
  RealMemory mm;
  HashAggTable agg(NextRelativelyPrime(2000, 31));
  AggregateGroup(mm, rel, 4, &agg, 19);
  EXPECT_EQ(agg.num_groups(), 2000u);
  agg.ForEachGroup([&](const AggState& s) {
    EXPECT_EQ(s.count, 1u);
    EXPECT_EQ(s.sum, 7);
  });
}

TEST(AggregateTest, EmptyInput) {
  Relation rel(Schema::KeyPayload(16));
  RealMemory mm;
  HashAggTable agg(13);
  AggregateGroup(mm, rel, 4, &agg, 19);
  EXPECT_EQ(agg.num_groups(), 0u);
}

TEST(AggregateTest, SkewedDuplicatesWithinOneGroupBatch) {
  // Zipf-heavy keys: many same-key tuples inside one prefetch group; the
  // create-then-find ordering within stage 1 must keep counts exact.
  Relation facts = GenerateSkewedRelation(10000, 16, 1.05, 20, 21);
  // GenerateSkewedRelation has no 8-byte value column; aggregate with
  // value_offset beyond the tuple so only counts accumulate.
  RealMemory mm;
  HashAggTable agg(97);
  AggregateGroup(mm, facts, /*value_offset=*/100, &agg, 37);
  uint64_t total = 0;
  agg.ForEachGroup([&](const AggState& s) { total += s.count; });
  EXPECT_EQ(total, facts.num_tuples());
  EXPECT_LE(agg.num_groups(), 20u);
}

TEST(AggregateTest, FindLocatesGroups) {
  Relation facts = MakeFacts(1000, 50, 31);
  RealMemory mm;
  HashAggTable agg(53);
  AggregateBaseline(mm, facts, 4, &agg);
  auto oracle = Oracle(facts);
  for (auto& [key, cs] : oracle) {
    const AggState* s = agg.Find(key);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->count, cs.first);
  }
  EXPECT_EQ(agg.Find(999999), nullptr);
}

TEST(AggregateTest, SimulatedGroupPrefetchReducesStalls) {
  Relation facts = MakeFacts(40000, 30000, 41);
  uint64_t buckets = NextRelativelyPrime(30000, 31);
  auto run = [&](bool group) {
    sim::MemorySim simulator{sim::SimConfig{}};
    SimMemory mm(&simulator);
    HashAggTable agg(buckets);
    if (group) {
      AggregateGroup(mm, facts, 4, &agg, 19);
    } else {
      AggregateBaseline(mm, facts, 4, &agg);
    }
    return simulator.stats();
  };
  sim::SimStats base = run(false);
  sim::SimStats gp = run(true);
  EXPECT_GT(base.TotalCycles(), gp.TotalCycles() * 3 / 2);
  EXPECT_LT(gp.dcache_stall_cycles, base.dcache_stall_cycles / 2);
}

}  // namespace
}  // namespace hashjoin
