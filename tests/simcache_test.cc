#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "mem/memory_model.h"
#include "simcache/branch.h"
#include "simcache/cache.h"
#include "simcache/memory_sim.h"
#include "simcache/tlb.h"
#include "util/aligned.h"

namespace hashjoin {
namespace sim {
namespace {

SimConfig SmallConfig() {
  SimConfig cfg;
  cfg.l1d_size = 4 * 1024;  // 4KB, 4-way, 64B lines -> 16 sets
  cfg.l1d_assoc = 4;
  cfg.l2_size = 64 * 1024;
  cfg.l2_assoc = 8;
  cfg.dtlb_entries = 8;
  return cfg;
}

TEST(SetAssocCacheTest, MissThenHit) {
  SetAssocCache c(4096, 4, 64);
  EXPECT_EQ(c.Lookup(0), nullptr);
  c.Insert(0);
  EXPECT_NE(c.Lookup(0), nullptr);
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(SetAssocCacheTest, LruEvictionWithinSet) {
  SetAssocCache c(4096, 4, 64);  // 16 sets
  // 5 lines mapping to set 0: addresses k * 16 * 64.
  uint64_t stride = 16 * 64;
  for (uint64_t i = 0; i < 5; ++i) c.Insert(i * stride);
  // Line 0 was LRU and must be gone; lines 1..4 resident.
  EXPECT_EQ(c.Lookup(0), nullptr);
  for (uint64_t i = 1; i < 5; ++i) {
    EXPECT_NE(c.Lookup(i * stride), nullptr) << i;
  }
}

TEST(SetAssocCacheTest, LookupPromotesToMru) {
  SetAssocCache c(4096, 4, 64);
  uint64_t stride = 16 * 64;
  for (uint64_t i = 0; i < 4; ++i) c.Insert(i * stride);
  c.Lookup(0);                // line 0 becomes MRU
  c.Insert(4 * stride);       // evicts line 1 (now LRU), not line 0
  EXPECT_NE(c.Lookup(0), nullptr);
  EXPECT_EQ(c.Lookup(1 * stride), nullptr);
}

TEST(SetAssocCacheTest, FlushEmptiesEverything) {
  SetAssocCache c(4096, 4, 64);
  for (uint64_t i = 0; i < 32; ++i) c.Insert(i * 64);
  c.Flush();
  for (uint64_t i = 0; i < 32; ++i) EXPECT_EQ(c.Lookup(i * 64), nullptr);
}

TEST(SetAssocCacheTest, EvictedBeforeUseCounted) {
  SetAssocCache c(4096, 4, 64);
  uint64_t stride = 16 * 64;
  auto* info = c.Insert(0);
  info->prefetched = true;  // prefetched, never referenced
  for (uint64_t i = 1; i <= 4; ++i) c.Insert(i * stride);
  EXPECT_EQ(c.evicted_before_use(), 1u);
}

TEST(SetAssocCacheTest, ReferencedPrefetchNotCountedOnEviction) {
  SetAssocCache c(4096, 4, 64);
  uint64_t stride = 16 * 64;
  auto* info = c.Insert(0);
  info->prefetched = true;
  info->referenced = true;
  for (uint64_t i = 1; i <= 4; ++i) c.Insert(i * stride);
  EXPECT_EQ(c.evicted_before_use(), 0u);
}

TEST(TlbTest, MissInsertHit) {
  Tlb tlb(4, 8192);
  EXPECT_FALSE(tlb.Lookup(0));
  tlb.Insert(0);
  EXPECT_TRUE(tlb.Lookup(0));
  EXPECT_TRUE(tlb.Lookup(100));  // same page
  EXPECT_FALSE(tlb.Lookup(8192));
}

TEST(TlbTest, LruEviction) {
  Tlb tlb(2, 8192);
  tlb.Insert(0 * 8192);
  tlb.Insert(1 * 8192);
  tlb.Lookup(0);             // page 0 MRU
  tlb.Insert(2 * 8192);      // evicts page 1
  EXPECT_TRUE(tlb.Lookup(0));
  EXPECT_FALSE(tlb.Lookup(1 * 8192));
  EXPECT_TRUE(tlb.Lookup(2 * 8192));
}

TEST(TlbTest, FlushDropsAll) {
  Tlb tlb(4, 8192);
  tlb.Insert(0);
  tlb.Flush();
  EXPECT_FALSE(tlb.Lookup(0));
}

TEST(BranchPredictorTest, LearnsStableDirection) {
  BranchPredictor p;
  int mispredicts = 0;
  for (int i = 0; i < 100; ++i) mispredicts += p.Record(1, true);
  EXPECT_LE(mispredicts, 2);  // warms up quickly
}

TEST(BranchPredictorTest, AlternatingIsHard) {
  BranchPredictor p;
  int mispredicts = 0;
  for (int i = 0; i < 100; ++i) mispredicts += p.Record(2, i % 2 == 0);
  EXPECT_GT(mispredicts, 30);
}

// --- MemorySim ---

TEST(MemorySimTest, BusyOnlyAccumulates) {
  MemorySim sim(SmallConfig());
  sim.Busy(100);
  sim.Busy(50);
  EXPECT_EQ(sim.stats().busy_cycles, 150u);
  EXPECT_EQ(sim.now(), 150u);
}

TEST(MemorySimTest, CyclesPartitionTotalExactly) {
  MemorySim sim(SmallConfig());
  auto buf = MakeAlignedBuffer<uint8_t>(1 << 16);
  for (int i = 0; i < 1000; ++i) {
    sim.Busy(3);
    sim.Access(buf.get() + (i * 97) % (1 << 16), 8, i % 3 == 0);
    if (i % 7 == 0) sim.Prefetch(buf.get() + (i * 131) % (1 << 16), 64);
    sim.Branch(i % 4, i % 5 == 0);
  }
  SimStats s = sim.stats();
  EXPECT_EQ(s.TotalCycles(), sim.now());
}

TEST(MemorySimTest, ColdMissPaysFullLatency) {
  SimConfig cfg = SmallConfig();
  MemorySim sim(cfg);
  auto buf = MakeAlignedBuffer<uint8_t>(4096);
  // Warm the TLB so only the cache miss is charged.
  sim.Prefetch(buf.get(), 1);
  uint64_t before = sim.now();
  // Access a different page-offset line... same page, uncached line.
  sim.Access(buf.get() + 2048, 1, false);
  SimStats s = sim.stats();
  EXPECT_EQ(s.full_misses, 1u);
  EXPECT_GE(sim.now() - before, cfg.memory_latency);
}

TEST(MemorySimTest, HitCostsNothing) {
  MemorySim sim(SmallConfig());
  auto buf = MakeAlignedBuffer<uint8_t>(64);
  sim.Access(buf.get(), 8, false);
  uint64_t after_first = sim.now();
  sim.Access(buf.get(), 8, false);
  EXPECT_EQ(sim.now(), after_first);
  EXPECT_EQ(sim.stats().l1_hits, 1u);
}

TEST(MemorySimTest, PrefetchHidesLatencyWithEnoughWork) {
  SimConfig cfg = SmallConfig();
  MemorySim sim(cfg);
  auto buf = MakeAlignedBuffer<uint8_t>(4096);
  sim.Prefetch(buf.get(), 1);
  sim.Busy(cfg.memory_latency + cfg.tlb_miss_latency + 10);
  uint64_t before_stall = sim.stats().dcache_stall_cycles;
  sim.Access(buf.get(), 8, false);
  SimStats s = sim.stats();
  EXPECT_EQ(s.prefetch_hidden, 1u);
  EXPECT_EQ(s.dcache_stall_cycles, before_stall);
}

TEST(MemorySimTest, LatePrefetchPartiallyHides) {
  SimConfig cfg = SmallConfig();
  MemorySim sim(cfg);
  auto buf = MakeAlignedBuffer<uint8_t>(4096);
  sim.Prefetch(buf.get(), 1);
  sim.Busy(10);  // much less than memory_latency
  sim.Access(buf.get(), 8, false);
  SimStats s = sim.stats();
  EXPECT_EQ(s.prefetch_partial, 1u);
  EXPECT_GT(s.dcache_stall_cycles, 0u);
  EXPECT_LT(s.dcache_stall_cycles, cfg.memory_latency);
}

TEST(MemorySimTest, DemandTlbMissCharged) {
  SimConfig cfg = SmallConfig();
  MemorySim sim(cfg);
  auto buf = MakeAlignedBuffer<uint8_t>(64);
  sim.Access(buf.get(), 8, false);
  EXPECT_EQ(sim.stats().tlb_misses, 1u);
  EXPECT_EQ(sim.stats().dtlb_stall_cycles, cfg.tlb_miss_latency);
}

TEST(MemorySimTest, PrefetchInstallsTlbWithoutStall) {
  SimConfig cfg = SmallConfig();
  MemorySim sim(cfg);
  auto buf = MakeAlignedBuffer<uint8_t>(64);
  sim.Prefetch(buf.get(), 1);
  EXPECT_EQ(sim.stats().dtlb_stall_cycles, 0u);
  sim.Busy(cfg.memory_latency + 1);
  sim.Access(buf.get(), 8, false);
  EXPECT_EQ(sim.stats().tlb_misses, 0u);
  EXPECT_EQ(sim.stats().dtlb_stall_cycles, 0u);
}

TEST(MemorySimTest, L2HitCheaperThanMemory) {
  SimConfig cfg = SmallConfig();
  MemorySim sim(cfg);
  auto buf = MakeAlignedBuffer<uint8_t>(64 * 1024);
  sim.Access(buf.get(), 1, false);  // into L1 + L2
  // Evict from tiny L1 by touching many conflicting lines.
  for (int i = 1; i <= 8; ++i) {
    sim.Access(buf.get() + i * 4096, 1, false);
  }
  uint64_t stall_before = sim.stats().dcache_stall_cycles;
  sim.Access(buf.get(), 1, false);  // L1 miss, L2 hit
  uint64_t delta = sim.stats().dcache_stall_cycles - stall_before;
  EXPECT_EQ(delta, cfg.l2_hit_latency);
  EXPECT_GE(sim.stats().l2_hits, 1u);
}

TEST(MemorySimTest, BandwidthSerializesPipelinedMisses) {
  SimConfig cfg = SmallConfig();
  cfg.memory_bandwidth_gap = 40;
  MemorySim sim(cfg);
  auto buf = MakeAlignedBuffer<uint8_t>(1 << 15);
  // Issue 16 prefetches back-to-back; the 16th starts no earlier than
  // 15 * Tnext, so waiting for all takes ~ 15*Tnext + T.
  for (int i = 0; i < 16; ++i) sim.Prefetch(buf.get() + i * 64, 1);
  for (int i = 0; i < 16; ++i) sim.Access(buf.get() + i * 64, 1, false);
  EXPECT_GE(sim.now(), 15u * cfg.memory_bandwidth_gap + cfg.memory_latency);
}

TEST(MemorySimTest, MshrLimitDelaysExcessPrefetches) {
  SimConfig cfg = SmallConfig();
  cfg.miss_handlers = 2;
  cfg.memory_bandwidth_gap = 1;
  MemorySim sim(cfg);
  auto buf = MakeAlignedBuffer<uint8_t>(1 << 15);
  for (int i = 0; i < 8; ++i) sim.Prefetch(buf.get() + i * 64, 1);
  // With only 2 handlers the 8 transfers pipeline in pairs: the last
  // completes no earlier than 4 * T.
  sim.Access(buf.get() + 7 * 64, 1, false);
  EXPECT_GE(sim.now(), 4u * cfg.memory_latency);
}

TEST(MemorySimTest, PeriodicFlushForcesRemisses) {
  SimConfig cfg = SmallConfig();
  cfg.flush_period_cycles = 1000;
  MemorySim sim(cfg);
  auto buf = MakeAlignedBuffer<uint8_t>(64);
  sim.Access(buf.get(), 8, false);
  EXPECT_EQ(sim.stats().full_misses, 1u);
  sim.Busy(2000);  // cross the flush boundary
  sim.Access(buf.get(), 8, false);
  EXPECT_EQ(sim.stats().full_misses, 2u);
  EXPECT_GE(sim.stats().tlb_misses, 2u);
}

TEST(MemorySimTest, NoFlushWhenDisabled) {
  MemorySim sim(SmallConfig());
  auto buf = MakeAlignedBuffer<uint8_t>(64);
  sim.Access(buf.get(), 8, false);
  sim.Busy(100000000);
  sim.Access(buf.get(), 8, false);
  EXPECT_EQ(sim.stats().full_misses, 1u);
}

TEST(MemorySimTest, BranchMispredictChargesOtherStall) {
  SimConfig cfg = SmallConfig();
  MemorySim sim(cfg);
  // Alternating outcomes at one site mispredict often.
  for (int i = 0; i < 100; ++i) sim.Branch(3, i % 2 == 0);
  SimStats s = sim.stats();
  EXPECT_GT(s.branch_mispredicts, 0u);
  EXPECT_EQ(s.other_stall_cycles,
            s.branch_mispredicts * cfg.branch_mispredict_penalty);
}

TEST(MemorySimTest, ResetStatsRebasesPrefetchArrivalTimes) {
  SimConfig cfg = SmallConfig();
  MemorySim sim(cfg);
  auto buf = MakeAlignedBuffer<uint8_t>(4096);
  sim.Prefetch(buf.get(), 1);
  sim.Busy(cfg.memory_latency + 100);  // the line has long arrived
  sim.ResetStats();
  sim.Access(buf.get(), 8, false);
  // The line completed before the reset: no stall may be charged on the
  // re-based clock (regression: absolute ready_time leaking across
  // ResetStats charged phantom stalls).
  EXPECT_EQ(sim.stats().dcache_stall_cycles, 0u);
}

TEST(MemorySimTest, ResetStatsKeepsInFlightPrefetchInFlight) {
  SimConfig cfg = SmallConfig();
  MemorySim sim(cfg);
  auto buf = MakeAlignedBuffer<uint8_t>(4096);
  sim.Busy(50);
  sim.Prefetch(buf.get(), 1);  // completes ~latency cycles from now
  sim.ResetStats();
  sim.Access(buf.get(), 8, false);  // still on its way: partial stall
  SimStats s = sim.stats();
  EXPECT_EQ(s.prefetch_partial, 1u);
  EXPECT_GT(s.dcache_stall_cycles, 0u);
  EXPECT_LE(s.dcache_stall_cycles, cfg.memory_latency);
}

TEST(MemorySimTest, ResetStatsPreservesCacheContents) {
  MemorySim sim(SmallConfig());
  auto buf = MakeAlignedBuffer<uint8_t>(64);
  sim.Access(buf.get(), 8, false);
  sim.ResetStats();
  EXPECT_EQ(sim.stats().TotalCycles(), 0u);
  sim.Access(buf.get(), 8, false);  // still cached
  EXPECT_EQ(sim.stats().l1_hits, 1u);
  EXPECT_EQ(sim.stats().full_misses, 0u);
}

TEST(MemorySimTest, MultiLineAccessTouchesEachLine) {
  MemorySim sim(SmallConfig());
  auto buf = MakeAlignedBuffer<uint8_t>(512);
  sim.Access(buf.get(), 256, false);  // 4 lines
  SimStats s = sim.stats();
  EXPECT_EQ(s.DemandLineAccesses(), 4u);
}

TEST(MemorySimTest, StatsDiffIsExact) {
  MemorySim sim(SmallConfig());
  auto buf = MakeAlignedBuffer<uint8_t>(4096);
  sim.Access(buf.get(), 8, false);
  SimStats before = sim.stats();
  sim.Busy(10);
  sim.Access(buf.get() + 1024, 8, false);
  SimStats delta = sim.stats() - before;
  EXPECT_EQ(delta.busy_cycles, 10u);
  EXPECT_EQ(delta.full_misses, 1u);
}

// --- memory model policies ---

TEST(MemoryModelTest, RealMemoryCompilesToNoOps) {
  RealMemory mm;
  int x = 5;
  mm.Busy(100);
  mm.Read(&x, sizeof(x));
  mm.Write(&x, sizeof(x));
  mm.Prefetch(&x, sizeof(x));
  mm.Branch(1, true);
  EXPECT_FALSE(RealMemory::kSimulated);
}

TEST(MemoryModelTest, SimMemoryForwards) {
  MemorySim sim(SmallConfig());
  SimMemory mm(&sim);
  auto buf = MakeAlignedBuffer<uint8_t>(64);
  mm.Busy(5);
  mm.Read(buf.get(), 8);
  EXPECT_EQ(sim.stats().busy_cycles, 5u);
  EXPECT_EQ(sim.stats().full_misses, 1u);
  EXPECT_TRUE(SimMemory::kSimulated);
}

}  // namespace
}  // namespace sim
}  // namespace hashjoin
