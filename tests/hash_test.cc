#include <cstring>
#include <map>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "hash/hash_func.h"
#include "hash/hash_table.h"
#include "util/bitops.h"
#include "util/random.h"

namespace hashjoin {
namespace {

TEST(HashFuncTest, DeterministicAndLengthSensitive) {
  const char* data = "abcdefgh";
  EXPECT_EQ(HashBytes(data, 8), HashBytes(data, 8));
  EXPECT_NE(HashBytes(data, 8), HashBytes(data, 7));
}

TEST(HashFuncTest, HandlesOddLengths) {
  const char* data = "abcdefghijk";
  std::set<uint32_t> hashes;
  for (size_t len = 1; len <= 11; ++len) hashes.insert(HashBytes(data, len));
  EXPECT_EQ(hashes.size(), 11u);
}

TEST(HashFuncTest, Key32MatchesNoCollisionsOnSmallRange) {
  std::set<uint32_t> seen;
  for (uint32_t k = 0; k < 100000; ++k) seen.insert(HashKey32(k));
  // An invertible mixer has zero collisions; allow none.
  EXPECT_EQ(seen.size(), 100000u);
}

TEST(HashFuncTest, BucketDistributionIsUniform) {
  // Sequential keys must spread evenly over a prime bucket count.
  const uint64_t buckets = 1009;
  std::vector<int> counts(buckets, 0);
  const int n = 100000;
  for (uint32_t k = 0; k < n; ++k) counts[HashKey32(k) % buckets]++;
  double expected = double(n) / double(buckets);
  double chi2 = 0;
  for (int c : counts) chi2 += (c - expected) * (c - expected) / expected;
  // dof ~ 1008; a catastrophically bad hash blows far past 2000.
  EXPECT_LT(chi2, 1400.0);
}

TEST(HashFuncTest, BytesDistributionOverStringKeys) {
  const uint64_t buckets = 509;
  std::vector<int> counts(buckets, 0);
  char key[16];
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    std::snprintf(key, sizeof(key), "key-%08d", i);
    counts[HashBytes(key, 12) % buckets]++;
  }
  double expected = double(n) / double(buckets);
  double chi2 = 0;
  for (int c : counts) chi2 += (c - expected) * (c - expected) / expected;
  EXPECT_LT(chi2, 800.0);
}

class HashTableTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kTupleSize = 16;

  const uint8_t* MakeTuple(uint32_t key) {
    tuples_.push_back(std::vector<uint8_t>(kTupleSize, 0));
    std::memcpy(tuples_.back().data(), &key, 4);
    return tuples_.back().data();
  }

  std::vector<std::vector<uint8_t>> tuples_;
};

TEST_F(HashTableTest, InsertAndProbeSingle) {
  HashTable ht(101);
  uint32_t h = HashKey32(42);
  ht.Insert(h, MakeTuple(42));
  int found = 0;
  ht.Probe(h, [&](const uint8_t* t) {
    uint32_t key;
    std::memcpy(&key, t, 4);
    EXPECT_EQ(key, 42u);
    ++found;
  });
  EXPECT_EQ(found, 1);
  EXPECT_EQ(ht.num_tuples(), 1u);
}

TEST_F(HashTableTest, ProbeMissFindsNothing) {
  HashTable ht(101);
  ht.Insert(HashKey32(1), MakeTuple(1));
  int found = 0;
  ht.Probe(HashKey32(2), [&](const uint8_t*) { ++found; });
  // Different hash codes (mixer is invertible, so h(1) != h(2)).
  EXPECT_EQ(found, 0);
}

TEST_F(HashTableTest, InlineCellThenArrayGrowth) {
  // Force every tuple into one bucket with a 1-bucket table.
  HashTable ht(1);
  for (uint32_t k = 0; k < 100; ++k) ht.Insert(HashKey32(k), MakeTuple(k));
  EXPECT_EQ(ht.num_tuples(), 100u);
  EXPECT_EQ(ht.CountTuplesSlow(), 100u);
  const BucketHeader* b = ht.bucket(0);
  EXPECT_EQ(b->count, 100u);
  EXPECT_GE(b->capacity, 99u);
  // Probe for each key must find exactly one hash-code match.
  for (uint32_t k = 0; k < 100; ++k) {
    int found = 0;
    ht.Probe(HashKey32(k), [&](const uint8_t* t) {
      uint32_t key;
      std::memcpy(&key, t, 4);
      if (key == k) ++found;
    });
    EXPECT_EQ(found, 1) << k;
  }
}

TEST_F(HashTableTest, DuplicateKeysAllRetained) {
  HashTable ht(17);
  uint32_t h = HashKey32(7);
  for (int i = 0; i < 5; ++i) ht.Insert(h, MakeTuple(7));
  int found = 0;
  ht.Probe(h, [&](const uint8_t*) { ++found; });
  EXPECT_EQ(found, 5);
}

TEST_F(HashTableTest, ResetEmpties) {
  HashTable ht(11);
  ht.Insert(HashKey32(1), MakeTuple(1));
  ht.Insert(HashKey32(1), MakeTuple(1));
  ht.Reset();
  EXPECT_EQ(ht.num_tuples(), 0u);
  EXPECT_EQ(ht.CountTuplesSlow(), 0u);
  int found = 0;
  ht.Probe(HashKey32(1), [&](const uint8_t*) { ++found; });
  EXPECT_EQ(found, 0);
}

TEST_F(HashTableTest, ManyKeysRoundTrip) {
  const uint32_t n = 20000;
  HashTable ht(NextRelativelyPrime(n, 31));
  for (uint32_t k = 0; k < n; ++k) ht.Insert(HashKey32(k), MakeTuple(k));
  EXPECT_EQ(ht.CountTuplesSlow(), uint64_t(n));
  Rng rng(5);
  for (int trial = 0; trial < 500; ++trial) {
    uint32_t k = uint32_t(rng.NextBounded(n));
    int exact = 0;
    ht.Probe(HashKey32(k), [&](const uint8_t* t) {
      uint32_t key;
      std::memcpy(&key, t, 4);
      if (key == k) ++exact;
    });
    EXPECT_EQ(exact, 1) << k;
  }
}

TEST_F(HashTableTest, EstimateBytesScalesLinearly) {
  EXPECT_EQ(HashTable::EstimateBytes(0), 0u);
  EXPECT_EQ(HashTable::EstimateBytes(1000),
            1000u * (sizeof(BucketHeader) + sizeof(HashCell)));
}

TEST_F(HashTableTest, EnsureArrayCapacityPreservesCells) {
  HashTable ht(1);
  BucketHeader* b = ht.bucket(0);
  // Insert via the public API until several growths happened.
  for (uint32_t k = 0; k < 40; ++k) ht.Insert(HashKey32(k), MakeTuple(k));
  ASSERT_EQ(b->count, 40u);
  std::vector<uint32_t> hashes;
  for (uint32_t i = 0; i + 1 < b->count; ++i) {
    hashes.push_back(b->array[i].hash);
  }
  // Force one more growth cycle and verify old cells survived.
  uint32_t before_cap = b->capacity;
  while (b->capacity == before_cap) {
    ht.Insert(HashKey32(1000 + b->count), MakeTuple(1000 + b->count));
  }
  for (size_t i = 0; i < hashes.size(); ++i) {
    EXPECT_EQ(b->array[i].hash, hashes[i]) << i;
  }
}

TEST(BucketHeaderTest, LayoutIsCompact) {
  EXPECT_EQ(sizeof(BucketHeader), 32u);
  EXPECT_EQ(sizeof(HashCell), 16u);
}

}  // namespace
}  // namespace hashjoin
