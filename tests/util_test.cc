#include <map>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "util/aligned.h"
#include "util/bitops.h"
#include "util/checksum.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/status.h"
#include "util/timer.h"

namespace hashjoin {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IOError("disk gone");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(s.message(), "disk gone");
  EXPECT_EQ(s.ToString(), "IOError: disk gone");
}

TEST(StatusTest, AllCodesHaveNames) {
  std::set<std::string> names;
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kResourceExhausted,
        StatusCode::kFailedPrecondition, StatusCode::kInternal,
        StatusCode::kIOError, StatusCode::kUnimplemented,
        StatusCode::kDataLoss}) {
    EXPECT_STRNE(StatusCodeToString(c), "Unknown");
    // Names must also be distinct, or logs become ambiguous.
    EXPECT_TRUE(names.insert(StatusCodeToString(c)).second)
        << StatusCodeToString(c);
  }
}

TEST(StatusTest, DataLossRoundTripsThroughToString) {
  Status s = Status::DataLoss("checksum mismatch");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_EQ(s.ToString(), "DataLoss: checksum mismatch");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("nope"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(ReturnIfErrorTest, PropagatesError) {
  auto fn = []() -> Status {
    HJ_RETURN_IF_ERROR(Status::Internal("boom"));
    return Status::OK();
  };
  EXPECT_EQ(fn().code(), StatusCode::kInternal);
}

TEST(AssignOrReturnTest, AssignsValueAndPropagatesError) {
  auto inner = [](bool fail) -> StatusOr<int> {
    if (fail) return Status::IOError("device error");
    return 7;
  };
  auto fn = [&](bool fail) -> StatusOr<int> {
    HJ_ASSIGN_OR_RETURN(int v, inner(fail));
    return v * 2;
  };
  auto ok = fn(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 14);
  auto err = fn(true);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kIOError);
}

TEST(ChecksumTest, KnownVectors) {
  // The canonical CRC-32 (reflected, poly 0xEDB88320) check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(ChecksumTest, ChainingMatchesOneShot) {
  const char* data = "the quick brown fox jumps over the lazy dog";
  size_t n = 43;
  uint32_t whole = Crc32(data, n);
  for (size_t split : {size_t(1), size_t(7), size_t(20), n - 1}) {
    uint32_t part = Crc32(data, split);
    EXPECT_EQ(Crc32(data + split, n - split, part), whole) << split;
  }
}

TEST(ChecksumTest, SensitiveToSingleBitFlips) {
  std::vector<uint8_t> buf(4096, 0xA5);
  uint32_t base = Crc32(buf.data(), buf.size());
  for (size_t bit : {size_t(0), size_t(9), size_t(4095 * 8 + 7)}) {
    buf[bit / 8] ^= uint8_t(1u << (bit % 8));
    EXPECT_NE(Crc32(buf.data(), buf.size()), base) << bit;
    buf[bit / 8] ^= uint8_t(1u << (bit % 8));
  }
  EXPECT_EQ(Crc32(buf.data(), buf.size()), base);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 5);
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.NextBounded(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int trues = 0;
  for (int i = 0; i < 10000; ++i) trues += rng.NextBool(0.3);
  EXPECT_NEAR(double(trues) / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(19);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
  EXPECT_NE(v, orig);  // 1/10! chance of false failure
}

TEST(ZipfTest, InRangeAndSkewed) {
  ZipfGenerator zipf(1000, 0.99, 3);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = zipf.Next();
    ASSERT_LT(v, 1000u);
    counts[v]++;
  }
  // The hottest value should be much hotter than the median.
  int max_count = 0;
  for (auto& [k, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 20000 / 100);  // >1% on a single key out of 1000
}

TEST(BitopsTest, PowerOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(1024));
  EXPECT_FALSE(IsPowerOfTwo(1023));
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(64), 64u);
  EXPECT_EQ(NextPowerOfTwo(65), 128u);
}

TEST(BitopsTest, Log2) {
  EXPECT_EQ(Log2(1), 0u);
  EXPECT_EQ(Log2(2), 1u);
  EXPECT_EQ(Log2(1024), 10u);
}

TEST(BitopsTest, RelativelyPrime) {
  EXPECT_TRUE(RelativelyPrime(9, 4));
  EXPECT_FALSE(RelativelyPrime(9, 6));
  EXPECT_TRUE(RelativelyPrime(7, 13));
}

TEST(BitopsTest, NextRelativelyPrimeProperties) {
  for (uint64_t m : {2ull, 31ull, 800ull, 1000ull}) {
    for (uint64_t v : {1ull, 10ull, 999ull, 4096ull}) {
      uint64_t r = NextRelativelyPrime(v, m);
      EXPECT_GE(r, v);
      EXPECT_TRUE(RelativelyPrime(r, m)) << r << " vs " << m;
    }
  }
}

TEST(BitopsTest, RoundUp) {
  EXPECT_EQ(RoundUp(0, 64), 0u);
  EXPECT_EQ(RoundUp(1, 64), 64u);
  EXPECT_EQ(RoundUp(64, 64), 64u);
  EXPECT_EQ(RoundUp(65, 64), 128u);
}

TEST(AlignedTest, AlignmentHonored) {
  for (size_t align : {64ul, 4096ul, 8192ul}) {
    void* p = AlignedAlloc(100, align);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u);
    AlignedFree(p);
  }
}

TEST(AlignedTest, BufferIsUsable) {
  auto buf = MakeAlignedBuffer<uint64_t>(128);
  for (int i = 0; i < 128; ++i) buf[i] = i * 3;
  for (int i = 0; i < 128; ++i) EXPECT_EQ(buf[i], uint64_t(i * 3));
}

TEST(FlagsTest, ParsesForms) {
  const char* argv[] = {"prog", "--alpha=3",   "--beta", "4.5",
                        "--gamma", "--name=abc"};
  FlagParser flags;
  flags.Parse(6, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(flags.GetDouble("beta", 0), 4.5);
  EXPECT_TRUE(flags.GetBool("gamma", false));
  EXPECT_EQ(flags.GetString("name", ""), "abc");
  EXPECT_EQ(flags.GetInt("missing", 42), 42);
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(TimerTest, MeasuresElapsed) {
  WallTimer t;
  volatile uint64_t x = 0;
  for (int i = 0; i < 100000; ++i) x += i;
  EXPECT_GE(t.ElapsedNanos(), 0);
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
}

TEST(StallTimerTest, Accumulates) {
  StallTimer t;
  t.Start();
  t.Stop();
  t.Start();
  t.Stop();
  EXPECT_GE(t.TotalNanos(), 0);
  t.Reset();
  EXPECT_EQ(t.TotalNanos(), 0);
}

}  // namespace
}  // namespace hashjoin
