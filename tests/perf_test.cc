// Tests for the observability subsystem: json_writer round-trips,
// PerfCounters on both the available and forced-unavailable paths,
// BenchReporter record schema, and the calibration -> MachineParams ->
// ChooseParams pipeline including the infeasible sentinels.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "model/cost_model.h"
#include "perf/bench_reporter.h"
#include "perf/calibrate.h"
#include "perf/perf_counters.h"
#include "util/json_writer.h"

namespace hashjoin {
namespace {

// ---------------------------------------------------------------------------
// json_writer

TEST(JsonWriter, EscapingRoundTrip) {
  JsonValue o = JsonValue::Object();
  o.Set("plain", "hello");
  o.Set("quotes", "a\"b\\c");
  o.Set("control", std::string("line1\nline2\ttab\x01end"));
  o.Set("unicode", "caf\xc3\xa9");  // UTF-8 passes through raw
  std::string text = o.Dump(2);

  auto parsed = JsonValue::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().Find("plain")->AsString(), "hello");
  EXPECT_EQ(parsed.value().Find("quotes")->AsString(), "a\"b\\c");
  EXPECT_EQ(parsed.value().Find("control")->AsString(),
            "line1\nline2\ttab\x01end");
  EXPECT_EQ(parsed.value().Find("unicode")->AsString(), "caf\xc3\xa9");
}

TEST(JsonWriter, NumbersSurviveRoundTrip) {
  JsonValue o = JsonValue::Object();
  o.Set("int", int64_t(1234567890123456789));
  o.Set("negative", int64_t(-42));
  o.Set("double", 0.25);
  o.Set("whole_double", 3.0);  // must come back as a double, not an int
  o.Set("boolean", true);
  o.Set("nothing", JsonValue());
  auto parsed = JsonValue::Parse(o.Dump(0));
  ASSERT_TRUE(parsed.ok());
  const JsonValue& p = parsed.value();
  EXPECT_EQ(p.Find("int")->AsInt(), 1234567890123456789);
  EXPECT_EQ(p.Find("negative")->AsInt(), -42);
  EXPECT_DOUBLE_EQ(p.Find("double")->AsDouble(), 0.25);
  EXPECT_EQ(p.Find("whole_double")->type(), JsonValue::Type::kDouble);
  EXPECT_DOUBLE_EQ(p.Find("whole_double")->AsDouble(), 3.0);
  EXPECT_TRUE(p.Find("boolean")->AsBool());
  EXPECT_TRUE(p.Find("nothing")->is_null());
}

TEST(JsonWriter, NestedStructuresAndPathLookup) {
  JsonValue root = JsonValue::Object();
  JsonValue wall = JsonValue::Object();
  wall.Set("median", 0.5);
  root.Set("wall_seconds", std::move(wall));
  JsonValue arr = JsonValue::Array();
  arr.Append(1);
  arr.Append("two");
  root.Set("list", std::move(arr));

  auto parsed = JsonValue::Parse(root.Dump(2));
  ASSERT_TRUE(parsed.ok());
  const JsonValue* median = parsed.value().FindPath("wall_seconds.median");
  ASSERT_NE(median, nullptr);
  EXPECT_DOUBLE_EQ(median->AsDouble(), 0.5);
  EXPECT_EQ(parsed.value().Find("list")->size(), 2u);
  EXPECT_EQ(parsed.value().FindPath("wall_seconds.missing"), nullptr);
  EXPECT_EQ(parsed.value().FindPath("absent.path"), nullptr);
}

TEST(JsonWriter, UnicodeEscapesDecode) {
  auto parsed = JsonValue::Parse(R"({"s": "aé☃😀b"})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  // é (2 bytes) + snowman (3 bytes) + emoji via surrogate pair (4 bytes).
  EXPECT_EQ(parsed.value().Find("s")->AsString(),
            "a\xc3\xa9\xe2\x98\x83\xf0\x9f\x98\x80"
            "b");
}

TEST(JsonWriter, ParseErrors) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\": 1,}").ok());
  EXPECT_FALSE(JsonValue::Parse("[1, 2] garbage").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\": tru}").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::Parse("nan").ok());
}

TEST(JsonWriter, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/hj_json_roundtrip.json";
  JsonValue o = JsonValue::Object();
  o.Set("bench", "unit");
  ASSERT_TRUE(WriteJsonFile(path, o).ok());
  auto back = ReadJsonFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().Find("bench")->AsString(), "unit");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// PerfCounters

TEST(PerfCounters, SpinLoopCountsOrDegradesGracefully) {
  perf::PerfCounters counters;
  counters.Start();
  volatile uint64_t sink = 0;
  for (uint64_t i = 0; i < 2'000'000; ++i) sink = sink + i;
  counters.Stop();
  const perf::CounterValues& v = counters.values();
  if (counters.available()) {
    // A 2M-iteration dependent-add loop must burn >1M cycles; anything
    // else means the counter window did not cover the loop.
    ASSERT_TRUE(v.cycles.has_value() || v.instructions.has_value());
    if (v.cycles.has_value()) EXPECT_GT(*v.cycles, 1'000'000u);
    if (v.instructions.has_value()) EXPECT_GT(*v.instructions, 2'000'000u);
  } else {
    // Unavailable hosts (perf_event_paranoid, containers, no PMU): no
    // crash, a reason, and every counter explicitly absent.
    EXPECT_FALSE(counters.unavailable_reason().empty());
    EXPECT_FALSE(v.cycles.has_value());
    EXPECT_FALSE(v.instructions.has_value());
  }
  // The JSON shape is identical either way; absent counters are null.
  JsonValue j = v.ToJson();
  ASSERT_NE(j.Find("cycles"), nullptr);
  ASSERT_NE(j.Find("scaled"), nullptr);
}

TEST(PerfCounters, ForcedDisableGivesValidEmptyReport) {
  ::setenv("HJ_PERF_DISABLE", "1", 1);
  {
    perf::PerfCounters counters;
    EXPECT_FALSE(counters.available());
    EXPECT_NE(counters.unavailable_reason().find("HJ_PERF_DISABLE"),
              std::string::npos);
    counters.Start();  // must be harmless no-ops
    counters.Stop();
    EXPECT_FALSE(counters.values().cycles.has_value());
    EXPECT_TRUE(counters.ActiveCounterNames().empty());
  }
  ::unsetenv("HJ_PERF_DISABLE");
}

// ---------------------------------------------------------------------------
// BenchReporter

TEST(BenchReporter, RecordSchemaAndWrite) {
  std::string path = ::testing::TempDir() + "/hj_bench_reporter.json";
  perf::BenchReporter::Options opt;
  opt.bench_name = "unit";
  opt.output_path = path;
  opt.trials = 3;
  opt.warmup = 1;
  perf::BenchReporter reporter(opt);

  int setups = 0, bodies = 0;
  JsonValue config = JsonValue::Object();
  config.Set("scheme", "group");
  JsonValue& rec = reporter.AddRecord(
      "unit/one", std::move(config), [&] { ++bodies; }, [&] { ++setups; });
  rec.Set("outputs", uint64_t(7));

  // warmup(1) + trials(3), setup before each.
  EXPECT_EQ(bodies, 4);
  EXPECT_EQ(setups, 4);

  ASSERT_TRUE(reporter.Write().ok());
  auto doc = ReadJsonFile(path);
  ASSERT_TRUE(doc.ok());
  const JsonValue& root = doc.value();
  EXPECT_EQ(root.Find("bench")->AsString(), "unit");
  ASSERT_NE(root.Find("host"), nullptr);
  ASSERT_NE(root.Find("host")->Find("counters_available"), nullptr);
  const JsonValue* records = root.Find("records");
  ASSERT_NE(records, nullptr);
  ASSERT_EQ(records->size(), 1u);
  const JsonValue& r = records->at(0);
  EXPECT_EQ(r.Find("name")->AsString(), "unit/one");
  EXPECT_EQ(r.Find("trials")->AsInt(), 3);
  EXPECT_EQ(r.FindPath("config.scheme")->AsString(), "group");
  ASSERT_NE(r.FindPath("wall_seconds.median"), nullptr);
  EXPECT_GE(r.FindPath("wall_seconds.median")->AsDouble(), 0.0);
  EXPECT_EQ(r.FindPath("wall_seconds.all")->size(), 3u);
  // counters: object, or null with an explicit reason.
  const JsonValue* counters = r.Find("counters");
  ASSERT_NE(counters, nullptr);
  if (counters->is_null()) {
    ASSERT_NE(r.Find("counters_unavailable"), nullptr);
    EXPECT_FALSE(r.Find("counters_unavailable")->AsString().empty());
  } else {
    EXPECT_TRUE(counters->is_object());
  }
  EXPECT_EQ(r.Find("outputs")->AsInt(), 7);
  std::remove(path.c_str());
}

TEST(BenchReporter, CountersDisabledByCaller) {
  perf::BenchReporter::Options opt;
  opt.bench_name = "unit";
  opt.output_path = ::testing::TempDir() + "/hj_bench_reporter_nc.json";
  opt.trials = 1;
  opt.warmup = 0;
  opt.collect_counters = false;
  perf::BenchReporter reporter(opt);
  EXPECT_FALSE(reporter.counters_available());
  JsonValue& rec =
      reporter.AddRecord("unit/nc", JsonValue::Object(), [] {});
  EXPECT_TRUE(rec.Find("counters")->is_null());
  ASSERT_NE(rec.Find("counters_unavailable"), nullptr);
}

// ---------------------------------------------------------------------------
// Calibration -> MachineParams -> ChooseParams pipeline

TEST(Calibrate, SmallRunProducesUsableMachineParams) {
  perf::CalibrationOptions opt;
  opt.buffer_bytes = 1 << 20;  // cache-sized: fast, still a valid pipeline
  opt.chase_steps = 50'000;
  opt.stream_passes = 2;
  perf::CalibrationResult cal = perf::CalibrateMachine(opt);

  EXPECT_GT(cal.cpu_ghz, 0.0);
  EXPECT_GT(cal.load_latency_ns, 0.0);
  EXPECT_GT(cal.line_gap_ns, 0.0);
  EXPECT_GE(cal.t_cycles, 1u);
  EXPECT_GE(cal.tnext_cycles, 1u);
  EXPECT_GE(cal.t_cycles, cal.tnext_cycles);  // dependent >= pipelined

  model::MachineParams m = cal.ToMachineParams();
  EXPECT_EQ(m.full_latency, cal.t_cycles);
  EXPECT_EQ(m.bandwidth_gap, cal.tnext_cycles);

  // Feed the measured machine through the theorems: feasible stage costs
  // must give usable (non-sentinel) parameters.
  model::CodeCosts costs{{10, 10, 10, 10}};
  model::ParamChoice choice = perf::TuneFromCalibration(cal, costs);
  EXPECT_GE(choice.group_size, 2u);
  EXPECT_GE(choice.prefetch_distance, 1u);
  EXPECT_TRUE(
      model::GroupPrefetchModel::ConditionHolds(costs, m,
                                                choice.group_size) ||
      !choice.group_feasible);

  JsonValue j = cal.ToJson();
  EXPECT_EQ(j.Find("t_cycles")->AsInt(), int64_t(cal.t_cycles));
}

TEST(Calibrate, SanitizeClampsDegenerateCalibrations) {
  // Regression: the ns->cycles truncation can emit tnext_cycles == 0 on
  // fast-DRAM/low-GHz hosts (and t_cycles == 0 on synthetic inputs),
  // where MinDistance has no feasible D. Sanitize must restore the
  // documented domain: 1 <= tnext <= t.
  perf::CalibrationResult cal;
  cal.t_cycles = 0;
  cal.tnext_cycles = 0;
  perf::SanitizeCalibration(&cal);
  EXPECT_GE(cal.tnext_cycles, 1u);
  EXPECT_GE(cal.t_cycles, cal.tnext_cycles);

  // A dependent miss reported cheaper than a pipelined one is a
  // measurement artifact; the sanitized T must cover Tnext.
  perf::CalibrationResult inverted;
  inverted.t_cycles = 3;
  inverted.tnext_cycles = 9;
  perf::SanitizeCalibration(&inverted);
  EXPECT_GE(inverted.t_cycles, inverted.tnext_cycles);
  EXPECT_GE(inverted.tnext_cycles, 1u);

  // Already-sane calibrations pass through untouched.
  perf::CalibrationResult sane;
  sane.t_cycles = 150;
  sane.tnext_cycles = 10;
  perf::SanitizeCalibration(&sane);
  EXPECT_EQ(sane.t_cycles, 150u);
  EXPECT_EQ(sane.tnext_cycles, 10u);

  // The degenerate calibration must now drive the full pipeline without
  // tripping either 0 sentinel.
  model::ParamChoice choice =
      perf::TuneFromCalibration(cal, model::CodeCosts{{0, 0}});
  EXPECT_GE(choice.group_size, 1u);
  EXPECT_GE(choice.prefetch_distance, 1u);
}

TEST(Calibrate, MaxOutstandingFlowsIntoMachineParamsAndJson) {
  perf::CalibrationResult cal;
  cal.t_cycles = 150;
  cal.tnext_cycles = 10;
  cal.max_outstanding = 12;
  model::MachineParams m = cal.ToMachineParams();
  EXPECT_EQ(m.max_outstanding, 12u);
  JsonValue j = cal.ToJson();
  ASSERT_NE(j.Find("max_outstanding"), nullptr);
  EXPECT_EQ(j.Find("max_outstanding")->AsInt(), 12);

  // The ceiling then clamps the tuned choice: k=2 stages at D, G group
  // slots, both within 12 outstanding misses.
  model::ParamChoice choice =
      perf::TuneFromCalibration(cal, model::CodeCosts{{2, 2, 2}});
  EXPECT_LE(choice.group_size, 12u);
  EXPECT_LE(choice.prefetch_distance, 6u);
}

TEST(ChooseParams, MatchesTheoremsWhenFeasible) {
  model::CodeCosts costs{{20, 20, 20}};
  model::MachineParams m{150, 10};
  model::ParamChoice choice = model::ChooseParams(costs, m);
  EXPECT_TRUE(choice.group_feasible);
  EXPECT_TRUE(choice.swp_feasible);
  EXPECT_EQ(choice.group_size,
            model::GroupPrefetchModel::MinGroupSize(costs, m));
  EXPECT_EQ(choice.prefetch_distance,
            model::SwpPrefetchModel::MinDistance(costs, m));
}

TEST(ChooseParams, GroupInfeasibleSentinelClamped) {
  // C0 = 0: (G-1)*C0 >= T can never hold -> MinGroupSize returns the 0
  // sentinel and ChooseParams must fall back, never emit G=0.
  model::CodeCosts costs{{0, 20, 20}};
  model::MachineParams m{150, 10};
  EXPECT_EQ(model::GroupPrefetchModel::MinGroupSize(costs, m), 0u);
  model::ParamChoice choice =
      model::ChooseParams(costs, m, /*fallback_group=*/64,
                          /*fallback_distance=*/4);
  EXPECT_FALSE(choice.group_feasible);
  EXPECT_EQ(choice.group_size, 64u);
  EXPECT_TRUE(choice.swp_feasible);  // Theorem 2 is fine with C0=0 here
  EXPECT_GE(choice.prefetch_distance, 1u);
}

TEST(ChooseParams, SwpInfeasibleSentinelClamped) {
  // A tiny max_distance with a huge T: no feasible D within the cap.
  model::CodeCosts costs{{1, 1}};
  model::MachineParams m{100000, 1};
  EXPECT_EQ(model::SwpPrefetchModel::MinDistance(costs, m,
                                                 /*max_distance=*/8),
            0u);
  model::ParamChoice choice = model::ChooseParams(
      costs, m, /*fallback_group=*/19, /*fallback_distance=*/4,
      /*max_group=*/4096, /*max_distance=*/8);
  EXPECT_FALSE(choice.swp_feasible);
  EXPECT_EQ(choice.prefetch_distance, 4u);
}

}  // namespace
}  // namespace hashjoin
