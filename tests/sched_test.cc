// Multi-query join service tests: revocable memory grants (broker
// revoke -> spill, release -> re-grow/un-spill), fair pool sharing via
// ThreadPool task groups, admission control with backpressure and
// deadlines, and N concurrent joins racing on seeded fault-injecting
// disks. Registered under the `sched` ctest label (ctest -L sched); the
// concurrency tests are the ones worth running under -DHASHJOIN_TSAN.

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "hash/hash_table.h"
#include "join/grace_disk.h"
#include "sched/join_scheduler.h"
#include "sched/memory_broker.h"
#include "storage/buffer_manager.h"
#include "util/thread_pool.h"
#include "workload/generator.h"

namespace hashjoin {
namespace {

constexpr uint64_t kKiB = 1024;
constexpr uint64_t kMiB = 1024 * 1024;

// ---------- ThreadPool task groups / PoolExecutor fair sharing ----------

TEST(TaskGroupTest, GroupsRunAllTasksAndWaitIndependently) {
  ThreadPool pool(4);
  auto g1 = pool.CreateGroup();
  auto g2 = pool.CreateGroup();
  std::atomic<int> c1{0}, c2{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit(g1, [&](uint32_t) { c1.fetch_add(1); });
    pool.Submit(g2, [&](uint32_t) { c2.fetch_add(1); });
  }
  pool.WaitGroup(g1.get());
  EXPECT_EQ(c1.load(), 200);
  pool.WaitGroup(g2.get());
  EXPECT_EQ(c2.load(), 200);
}

TEST(TaskGroupTest, GroupAndLegacySubmissionsCoexist) {
  ThreadPool pool(3);
  auto g = pool.CreateGroup();
  std::atomic<int> group_count{0}, legacy_count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit(g, [&](uint32_t) { group_count.fetch_add(1); });
    pool.Submit([&](uint32_t) { legacy_count.fetch_add(1); });
  }
  pool.WaitGroup(g.get());
  EXPECT_EQ(group_count.load(), 100);
  pool.Wait();  // legacy Wait covers group tasks too (all done by now)
  EXPECT_EQ(legacy_count.load(), 100);
}

TEST(ThreadPoolTest, SubmitNotifyCannotLoseWakeups) {
  // Regression test for a lost-wakeup race in ThreadPool::Submit: the
  // workers' sleep predicate (queued_) used to be bumped *outside* the
  // pool mutex before notify_one, so a worker that had just evaluated
  // the predicate under the lock — but not yet parked — could miss the
  // notification and strand the task, deadlocking Wait(). The fix
  // (PublishQueued) publishes the increment under the mutex. This
  // stresses the exact window: many rounds of a single fast task
  // against a single worker that is constantly crossing the
  // check-then-park edge. Before the fix, this hung within a few
  // hundred rounds; the alarm thread turns a hang into a failure.
  ThreadPool pool(1);
  std::atomic<int> done{0};
  std::atomic<bool> finished{false};
  std::thread alarm([&] {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(60);
    while (!finished.load()) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "ThreadPool::Wait() hung — lost wakeup in Submit";
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });
  constexpr int kRounds = 3000;
  for (int i = 0; i < kRounds; ++i) {
    pool.Submit(
        [&](uint32_t) { done.fetch_add(1, std::memory_order_relaxed); });
    pool.Wait();
  }
  finished.store(true);
  alarm.join();
  EXPECT_EQ(done.load(), kRounds);
}

TEST(PoolExecutorTest, SharedPoolServesManyExecutors) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  {
    std::vector<std::unique_ptr<PoolExecutor>> execs;
    for (int e = 0; e < 6; ++e) {
      execs.push_back(std::make_unique<PoolExecutor>(&pool));
    }
    for (auto& ex : execs) {
      for (int i = 0; i < 50; ++i) {
        ex->Submit([&](uint32_t) { total.fetch_add(1); });
      }
    }
    for (auto& ex : execs) ex->Wait();
    EXPECT_EQ(total.load(), 6 * 50);
  }  // dtors re-Wait; must not hang or double-count
  EXPECT_EQ(total.load(), 6 * 50);
}

TEST(PoolExecutorTest, OwnedPoolModeStillWorks) {
  PoolExecutor ex(3u);
  EXPECT_EQ(ex.num_workers(), 3u);
  std::atomic<int> n{0};
  for (int i = 0; i < 64; ++i) ex.Submit([&](uint32_t) { n.fetch_add(1); });
  ex.Wait();
  EXPECT_EQ(n.load(), 64);
}

// ---------- MemoryBroker ----------

TEST(MemoryBrokerTest, GrantsFromFreeBudgetUpToDesired) {
  MemoryBroker broker(100 * kKiB);
  auto a = broker.Acquire(10 * kKiB, 60 * kKiB);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value()->bytes(), 60 * kKiB);
  EXPECT_EQ(broker.free_bytes(), 40 * kKiB);
  auto b = broker.Acquire(10 * kKiB, 60 * kKiB);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value()->bytes(), 40 * kKiB);  // clipped, no revoke needed
  EXPECT_EQ(broker.free_bytes(), 0u);
  EXPECT_EQ(broker.total_revokes(), 0u);
  b.value()->Release();
  // A already holds its desired size, so the bytes return to the pool.
  EXPECT_EQ(broker.free_bytes(), 40 * kKiB);
  EXPECT_EQ(a.value()->bytes(), 60 * kKiB);
  EXPECT_EQ(a.value()->regrows(), 0u);
}

TEST(MemoryBrokerTest, AcquireRevokesSurplusLargestFirst) {
  MemoryBroker broker(100 * kKiB);
  auto a = broker.Acquire(20 * kKiB, 80 * kKiB);
  ASSERT_TRUE(a.ok());
  ASSERT_EQ(a.value()->bytes(), 80 * kKiB);
  // B needs 40 KiB minimum; 20 KiB free, so 20 KiB is revoked from A.
  auto b = broker.Acquire(40 * kKiB, 40 * kKiB);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value()->bytes(), 40 * kKiB);
  EXPECT_EQ(a.value()->bytes(), 60 * kKiB);
  EXPECT_EQ(a.value()->revokes(), 1u);
  EXPECT_EQ(a.value()->low_watermark(), 60 * kKiB);
  EXPECT_EQ(a.value()->initial_bytes(), 80 * kKiB);
  EXPECT_EQ(broker.total_revokes(), 1u);
  // B releases; A re-grows toward desired.
  b.value()->Release();
  EXPECT_EQ(a.value()->bytes(), 80 * kKiB);
  EXPECT_GE(a.value()->regrows(), 1u);
  EXPECT_EQ(broker.free_bytes(), 20 * kKiB);
}

TEST(MemoryBrokerTest, RevokeNeverCutsBelowMinimum) {
  MemoryBroker broker(100 * kKiB);
  auto a = broker.Acquire(50 * kKiB, 100 * kKiB);
  ASSERT_TRUE(a.ok());
  // Only 50 KiB of surplus exists; a 60 KiB minimum cannot be met.
  auto b = broker.Acquire(60 * kKiB, 60 * kKiB, /*timeout_seconds=*/0);
  EXPECT_EQ(b.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(a.value()->bytes(), 100 * kKiB);  // untouched by the failure
  // A 50 KiB minimum is exactly coverable.
  auto c = broker.Acquire(50 * kKiB, 50 * kKiB, 0);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(a.value()->bytes(), 50 * kKiB);
}

TEST(MemoryBrokerTest, InvalidAndImpossibleRequests) {
  MemoryBroker broker(10 * kKiB);
  EXPECT_EQ(broker.Acquire(0, 1 * kKiB).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(broker.Acquire(2 * kKiB, 1 * kKiB).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(broker.Acquire(11 * kKiB, 12 * kKiB).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(MemoryBrokerTest, TimedAcquireReportsDeadlineExceeded) {
  MemoryBroker broker(10 * kKiB);
  auto a = broker.Acquire(10 * kKiB, 10 * kKiB);
  ASSERT_TRUE(a.ok());
  auto b = broker.Acquire(5 * kKiB, 5 * kKiB, /*timeout_seconds=*/0.05);
  EXPECT_EQ(b.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(MemoryBrokerTest, BlockingAcquireWakesOnRelease) {
  MemoryBroker broker(10 * kKiB);
  auto a = broker.Acquire(10 * kKiB, 10 * kKiB);
  ASSERT_TRUE(a.ok());
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    auto b = broker.Acquire(8 * kKiB, 8 * kKiB, /*timeout_seconds=*/30);
    ASSERT_TRUE(b.ok());
    acquired.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());
  a.value()->Release();
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

TEST(MemoryBrokerTest, RevokeListenerFiresWithNewSize) {
  MemoryBroker broker(100 * kKiB);
  auto a = broker.Acquire(20 * kKiB, 100 * kKiB);
  ASSERT_TRUE(a.ok());
  std::atomic<uint64_t> seen{0};
  a.value()->SetRevokeListener([&](uint64_t b) { seen.store(b); });
  auto b = broker.Acquire(30 * kKiB, 30 * kKiB);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(seen.load(), 70 * kKiB);
}

TEST(MemoryBrokerTest, LateListenerInstallCatchesUpOnPastRevokes) {
  MemoryBroker broker(100 * kKiB);
  auto a = broker.Acquire(20 * kKiB, 100 * kKiB);
  ASSERT_TRUE(a.ok());

  // Before any revoke, installing must NOT fire — nothing was missed,
  // and a spurious call would look like a revoke that never happened.
  std::atomic<uint64_t> calls{0}, seen{0};
  auto listener = [&](uint64_t b) {
    calls.fetch_add(1);
    seen.store(b);
  };
  a.value()->SetRevokeListener(listener);
  EXPECT_EQ(calls.load(), 0u);

  // Revoke with no listener installed: the notification is gone.
  a.value()->SetRevokeListener({});
  auto b = broker.Acquire(30 * kKiB, 30 * kKiB);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(calls.load(), 0u);

  // Late install after the revoke: the catch-up fires exactly once,
  // from this (installing) thread, with the live grant size.
  a.value()->SetRevokeListener(listener);
  EXPECT_EQ(calls.load(), 1u);
  EXPECT_EQ(seen.load(), 70 * kKiB);
  EXPECT_EQ(seen.load(), a.value()->bytes());
}

TEST(MemoryBrokerTest, RevokeListenerIsSafeUnderConcurrentRevokes) {
  // The locking contract: the callback runs on revoking threads (other
  // queries' admissions) with no broker locks held, so it must be
  // thread-safe and must not call back into the broker. A store-only
  // listener under four churning acquirers must observe a value history
  // consistent with the grant's own low watermark.
  MemoryBroker broker(128 * kKiB);
  auto a = broker.Acquire(16 * kKiB, 128 * kKiB);
  ASSERT_TRUE(a.ok());
  std::atomic<uint64_t> min_seen{UINT64_MAX};
  a.value()->SetRevokeListener([&](uint64_t b) {
    uint64_t cur = min_seen.load();
    while (b < cur && !min_seen.compare_exchange_weak(cur, b)) {
    }
  });

  std::atomic<int> failed{0};
  std::vector<std::thread> churn;
  for (int t = 0; t < 4; ++t) {
    churn.emplace_back([&broker, &failed] {
      for (int i = 0; i < 25; ++i) {
        auto g = broker.Acquire(8 * kKiB, 16 * kKiB, /*timeout_seconds=*/5.0);
        if (!g.ok()) {
          failed.fetch_add(1);
          continue;
        }
        g.value()->Release();
      }
    });
  }
  for (auto& t : churn) t.join();
  EXPECT_EQ(failed.load(), 0);
  EXPECT_GT(a.value()->revokes(), 0u);
  // Values may arrive out of order, but the smallest notified size is
  // exactly the smallest the grant ever held.
  EXPECT_EQ(min_seen.load(), a.value()->low_watermark());
}

// ---------- Grant-aware disk join: revoke -> spill, regrow -> un-spill --

DiskConfig FastDisk() {
  DiskConfig cfg;
  cfg.bandwidth_mb_per_s = 20000;
  cfg.request_latency_us = 0;
  return cfg;
}

BufferManagerConfig FastDisks(uint32_t n) {
  BufferManagerConfig cfg;
  cfg.num_disks = n;
  cfg.disk = FastDisk();
  return cfg;
}

JoinWorkload SmallWorkload(uint64_t build_tuples) {
  WorkloadSpec spec;
  spec.num_build_tuples = build_tuples;
  spec.tuple_size = 20;
  spec.matches_per_build = 2.0;
  return GenerateJoinWorkload(spec);
}

TEST(DynamicBudgetTest, RevokeMidJoinForcesSpillAndIsCounted) {
  JoinWorkload w = SmallWorkload(8000);
  BufferManager bm(FastDisks(2));
  DiskJoinConfig cfg;
  cfg.num_partitions = 8;
  cfg.memory_budget = 4 * kMiB;  // static fallback, unused once wired
  // A generous budget for the first sizing decisions, then a "revoke"
  // to a budget smaller than any partition's build footprint.
  std::atomic<int> calls{0};
  std::atomic<uint64_t> live{4 * kMiB};
  cfg.dynamic_budget = [&]() -> uint64_t {
    if (calls.fetch_add(1) == 2) live.store(16 * kKiB);
    return live.load();
  };
  DiskGraceJoin join(&bm, cfg);
  auto b = join.StoreRelation(w.build);
  auto p = join.StoreRelation(w.probe);
  ASSERT_TRUE(b.ok() && p.ok());
  auto r = join.Join(b.value(), p.value());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().output_tuples, w.expected_matches);
  // Partitions that would have fit at the peak budget spilled because of
  // the shrink — the revoke-spill tally must say so.
  EXPECT_GT(r.value().recovery.revoke_spills, 0u);
  EXPECT_GT(r.value().recovery.recursive_splits +
                r.value().recovery.chunked_fallbacks,
            0u);
}

TEST(DynamicBudgetTest, RegrowLetsBuildsRunInMemoryAndIsCounted) {
  JoinWorkload w = SmallWorkload(8000);
  BufferManager bm(FastDisks(2));
  DiskJoinConfig cfg;
  cfg.num_partitions = 8;
  // Starved at first (everything spills), then re-grown: later builds
  // run fully in memory although they exceed the trough budget.
  std::atomic<int> calls{0};
  std::atomic<uint64_t> live{16 * kKiB};
  cfg.dynamic_budget = [&]() -> uint64_t {
    if (calls.fetch_add(1) == 2) live.store(8 * kMiB);
    return live.load();
  };
  DiskGraceJoin join(&bm, cfg);
  auto b = join.StoreRelation(w.build);
  auto p = join.StoreRelation(w.probe);
  ASSERT_TRUE(b.ok() && p.ok());
  auto r = join.Join(b.value(), p.value());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().output_tuples, w.expected_matches);
  EXPECT_GT(r.value().recovery.regrant_unspills, 0u);
}

TEST(ReadAheadBudgetTest, ThrottlesScanWindowWithoutChangingResults) {
  JoinWorkload w = SmallWorkload(6000);
  uint64_t unthrottled;
  {
    BufferManager bm(FastDisks(2));
    DiskGraceJoin join(&bm, 4);
    auto b = join.StoreRelation(w.build);
    auto p = join.StoreRelation(w.probe);
    ASSERT_TRUE(b.ok() && p.ok());
    auto r = join.Join(b.value(), p.value());
    ASSERT_TRUE(r.ok());
    unthrottled = r.value().output_tuples;
    EXPECT_EQ(bm.readahead_throttles(), 0u);
  }
  {
    BufferManager bm(FastDisks(2));
    // Budget worth ~3 pages: the scan window must clamp (and count it)
    // while the join still produces identical results.
    bm.SetReadAheadBudget([] { return uint64_t(3 * 8 * kKiB); });
    DiskGraceJoin join(&bm, 4);
    auto b = join.StoreRelation(w.build);
    auto p = join.StoreRelation(w.probe);
    ASSERT_TRUE(b.ok() && p.ok());
    auto r = join.Join(b.value(), p.value());
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().output_tuples, unthrottled);
    EXPECT_EQ(r.value().output_tuples, w.expected_matches);
    EXPECT_GT(bm.readahead_throttles(), 0u);
  }
}

// ---------- JoinScheduler ----------

/// A query body joining `w` on its own fault-injecting disk array,
/// sized off the live grant. Mirrors how the concurrent bench and the
/// join_service example drive the scheduler.
StatusOr<uint64_t> RunDiskJoinQuery(QueryContext& ctx, const JoinWorkload& w,
                                    uint64_t fault_seed) {
  BufferManagerConfig bm_cfg = FastDisks(2);
  if (fault_seed != 0) {
    bm_cfg.disk.fault.read_error_rate = 0.02;
    bm_cfg.disk.fault.write_error_rate = 0.02;
    bm_cfg.disk.fault.seed = fault_seed;
  }
  BufferManager bm(bm_cfg);
  bm.SetReadAheadBudget(ctx.GrantFn());
  IoRecoveryStats io_before = bm.recovery_stats();

  DiskJoinConfig cfg;
  cfg.num_partitions = 8;
  cfg.dynamic_budget = ctx.GrantFn();
  cfg.initial_grant_bytes = ctx.grant().initial_bytes();
  DiskGraceJoin join(&bm, cfg);
  HJ_ASSIGN_OR_RETURN(auto build, join.StoreRelation(w.build));
  HJ_ASSIGN_OR_RETURN(auto probe, join.StoreRelation(w.probe));
  HJ_ASSIGN_OR_RETURN(DiskJoinResult r, join.Join(build, probe));

  ctx.stats().recovery = r.recovery;
  IoRecoveryStats io_after = bm.recovery_stats();
  ctx.stats().io.read_retries = io_after.read_retries - io_before.read_retries;
  ctx.stats().io.write_retries =
      io_after.write_retries - io_before.write_retries;
  ctx.stats().io.injected_faults =
      io_after.injected_faults - io_before.injected_faults;
  ctx.stats().readahead_throttles = bm.readahead_throttles();
  return r.output_tuples;
}

TEST(JoinSchedulerTest, ConcurrentFaultyJoinsAllProduceCorrectCounts) {
  SchedulerConfig cfg;
  cfg.max_concurrent = 3;
  cfg.max_queue = 16;
  cfg.pool_threads = 3;
  cfg.memory_budget = 2 * kMiB;  // well below the combined working sets
  JoinScheduler sched(cfg);

  const int kQueries = 6;
  std::vector<JoinWorkload> loads;
  for (int q = 0; q < kQueries; ++q) {
    loads.push_back(SmallWorkload(3000 + 500 * uint64_t(q)));
  }
  for (int q = 0; q < kQueries; ++q) {
    JoinRequest req;
    req.name = "q" + std::to_string(q);
    req.min_grant_bytes = 64 * kKiB;
    req.desired_grant_bytes = 1 * kMiB;
    req.body = [&loads, q](QueryContext& ctx) {
      return RunDiskJoinQuery(ctx, loads[size_t(q)], 1000 + uint64_t(q));
    };
    auto id = sched.Submit(std::move(req));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
  }
  ServiceStats stats = sched.Drain();
  ASSERT_EQ(stats.queries.size(), size_t(kQueries));
  EXPECT_EQ(stats.completed, uint64_t(kQueries));
  EXPECT_EQ(stats.failed, 0u);
  uint64_t injected = 0;
  for (const QueryStats& qs : stats.queries) {
    ASSERT_TRUE(qs.status.ok()) << qs.name << ": " << qs.status.ToString();
    int q = qs.name[1] - '0';
    EXPECT_EQ(qs.output_tuples, loads[size_t(q)].expected_matches) << qs.name;
    EXPECT_GE(qs.grant_initial_bytes, 64 * kKiB);
    injected += qs.io.injected_faults;
  }
  EXPECT_GT(injected, 0u) << "fault injection never fired; test is vacuous";
}

/// The robust hybrid configuration the revoke-storm rides on: adaptive
/// fan-out, residency-managed partitions, and the grant's revoke
/// listener wired in as the eager eviction hint.
StatusOr<uint64_t> RunRobustHybridQuery(QueryContext& ctx,
                                        const JoinWorkload& w) {
  BufferManager bm(FastDisks(2));
  bm.SetReadAheadBudget(ctx.GrantFn());

  DiskJoinConfig cfg;
  cfg.dynamic_budget = ctx.GrantFn();
  cfg.initial_grant_bytes = ctx.grant().initial_bytes();
  cfg.adaptive_fanout = true;
  cfg.hybrid_residency = true;
  cfg.install_revoke_listener = ctx.RevokeListenerInstaller();
  DiskGraceJoin join(&bm, cfg);
  HJ_ASSIGN_OR_RETURN(auto build, join.StoreRelation(w.build));
  HJ_ASSIGN_OR_RETURN(auto probe, join.StoreRelation(w.probe));
  HJ_ASSIGN_OR_RETURN(DiskJoinResult r, join.Join(build, probe));
  ctx.stats().recovery = r.recovery;
  return r.output_tuples;
}

TEST(JoinSchedulerTest, RevokeStormAllJoinsConvergeWithBalancedLedgers) {
  // 2x oversubscription: every query desires its whole working set, the
  // broker budget covers half of what max_concurrent of them want, and
  // mixed priorities keep admissions churning grants both ways. Every
  // join must converge to the exact match count, and the spill/un-spill
  // ledgers must stay internally consistent.
  const uint64_t kTuples = 4000;
  const uint64_t pages = kTuples * 26 / (8 * kKiB) + 1;
  const uint64_t ws = pages * 8 * kKiB + HashTable::EstimateBytes(kTuples);

  SchedulerConfig cfg;
  cfg.max_concurrent = 4;
  cfg.pool_threads = 4;
  cfg.max_queue = 16;
  cfg.memory_budget = ws * 2;
  JoinScheduler sched(cfg);

  const int kQueries = 8;
  std::vector<JoinWorkload> loads;
  for (int q = 0; q < kQueries; ++q) loads.push_back(SmallWorkload(kTuples));
  for (int q = 0; q < kQueries; ++q) {
    JoinRequest req;
    req.name = "s" + std::to_string(q);
    req.priority = q % 3;
    req.min_grant_bytes = std::max<uint64_t>(ws / 8, 8 * kKiB);
    req.desired_grant_bytes = ws;
    req.body = [&loads, q](QueryContext& ctx) {
      return RunRobustHybridQuery(ctx, loads[size_t(q)]);
    };
    ASSERT_TRUE(sched.Submit(std::move(req)).ok());
  }
  ServiceStats stats = sched.Drain();
  ASSERT_EQ(stats.queries.size(), size_t(kQueries));
  EXPECT_EQ(stats.completed, uint64_t(kQueries));
  EXPECT_EQ(stats.failed, 0u);

  uint64_t spills = 0, unspills = 0;
  for (const QueryStats& qs : stats.queries) {
    ASSERT_TRUE(qs.status.ok()) << qs.name << ": " << qs.status.ToString();
    int q = qs.name[1] - '0';
    EXPECT_EQ(qs.output_tuples, loads[size_t(q)].expected_matches) << qs.name;
    // A spill classified as revoke-forced requires an actual revoke in
    // this grant's history — the classification cannot invent one.
    if (qs.recovery.revoke_spills > 0) {
      EXPECT_GT(qs.grant_revokes, 0u) << qs.name;
    }
    spills += qs.recovery.victim_spills;
    unspills += qs.recovery.victim_unspills;
  }
  // The storm forced evictions somewhere, and only evicted partitions
  // can be re-admitted.
  EXPECT_GT(spills, 0u);
  EXPECT_LE(unspills, spills);
  EXPECT_GT(sched.broker().total_revokes(), 0u);
}

TEST(JoinSchedulerTest, FullQueueRejectsWithResourceExhausted) {
  SchedulerConfig cfg;
  cfg.max_concurrent = 1;
  cfg.max_queue = 2;
  cfg.pool_threads = 1;
  JoinScheduler sched(cfg);

  std::atomic<bool> release{false};
  JoinRequest blocker;
  blocker.name = "blocker";
  blocker.body = [&](QueryContext&) -> StatusOr<uint64_t> {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return uint64_t(0);
  };
  ASSERT_TRUE(sched.Submit(std::move(blocker)).ok());
  // Give the runner a moment to pick the blocker up, freeing the queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  int accepted = 0, rejected = 0;
  for (int i = 0; i < 5; ++i) {
    JoinRequest req;
    req.name = "flood" + std::to_string(i);
    req.body = [](QueryContext&) -> StatusOr<uint64_t> {
      return uint64_t(1);
    };
    auto id = sched.Submit(std::move(req));
    if (id.ok()) {
      ++accepted;
    } else {
      EXPECT_EQ(id.status().code(), StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  EXPECT_EQ(accepted, 2);  // max_queue
  EXPECT_EQ(rejected, 3);
  release.store(true);
  ServiceStats stats = sched.Drain();
  EXPECT_EQ(stats.rejected, 3u);
  EXPECT_EQ(stats.completed, uint64_t(1 + accepted));
}

TEST(JoinSchedulerTest, HigherPriorityRunsFirst) {
  SchedulerConfig cfg;
  cfg.max_concurrent = 1;
  cfg.max_queue = 8;
  cfg.pool_threads = 1;
  JoinScheduler sched(cfg);

  std::atomic<bool> release{false};
  JoinRequest blocker;
  blocker.name = "blocker";
  blocker.body = [&](QueryContext&) -> StatusOr<uint64_t> {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return uint64_t(0);
  };
  ASSERT_TRUE(sched.Submit(std::move(blocker)).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::mutex order_mu;
  std::vector<std::string> order;
  auto make = [&](const std::string& name, int priority) {
    JoinRequest req;
    req.name = name;
    req.priority = priority;
    req.body = [&order_mu, &order, name](QueryContext&)
        -> StatusOr<uint64_t> {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(name);
      return uint64_t(0);
    };
    ASSERT_TRUE(sched.Submit(std::move(req)).ok());
  };
  make("low-a", 0);
  make("high", 5);
  make("low-b", 0);
  release.store(true);
  sched.WaitAll();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "high");
  EXPECT_EQ(order[1], "low-a");  // FIFO within a priority level
  EXPECT_EQ(order[2], "low-b");
}

TEST(JoinSchedulerTest, DeadlineExpiresInQueueWithCleanStatus) {
  SchedulerConfig cfg;
  cfg.max_concurrent = 1;
  cfg.max_queue = 4;
  cfg.pool_threads = 1;
  JoinScheduler sched(cfg);

  JoinRequest slow;
  slow.name = "slow";
  slow.body = [](QueryContext&) -> StatusOr<uint64_t> {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    return uint64_t(0);
  };
  ASSERT_TRUE(sched.Submit(std::move(slow)).ok());

  JoinRequest doomed;
  doomed.name = "doomed";
  doomed.deadline_seconds = 0.01;  // expires while `slow` runs
  doomed.body = [](QueryContext&) -> StatusOr<uint64_t> {
    ADD_FAILURE() << "expired query must not run";
    return uint64_t(0);
  };
  ASSERT_TRUE(sched.Submit(std::move(doomed)).ok());

  ServiceStats stats = sched.Drain();
  EXPECT_EQ(stats.deadline_expired, 1u);
  EXPECT_EQ(stats.completed, 1u);
  bool found = false;
  for (const QueryStats& qs : stats.queries) {
    if (qs.name != "doomed") continue;
    found = true;
    EXPECT_EQ(qs.status.code(), StatusCode::kDeadlineExceeded);
  }
  EXPECT_TRUE(found);
}

TEST(JoinSchedulerTest, BodyErrorsSurfaceAsFailedQueryStats) {
  SchedulerConfig cfg;
  cfg.max_concurrent = 2;
  cfg.max_queue = 4;
  cfg.pool_threads = 1;
  JoinScheduler sched(cfg);
  JoinRequest req;
  req.name = "bad";
  req.body = [](QueryContext&) -> StatusOr<uint64_t> {
    return Status::DataLoss("simulated corruption");
  };
  ASSERT_TRUE(sched.Submit(std::move(req)).ok());
  ServiceStats stats = sched.Drain();
  EXPECT_EQ(stats.failed, 1u);
  ASSERT_EQ(stats.queries.size(), 1u);
  EXPECT_EQ(stats.queries[0].status.code(), StatusCode::kDataLoss);
}

TEST(JoinSchedulerTest, SecondQueryRevokesFirstAndStatsRecordIt) {
  SchedulerConfig cfg;
  cfg.max_concurrent = 2;
  cfg.max_queue = 4;
  cfg.pool_threads = 2;
  cfg.memory_budget = 1 * kMiB;
  JoinScheduler sched(cfg);

  // A grabs the whole budget, then waits (bounded) for a revoke. The
  // wait polls the monotonic revoke counter, not bytes(): the claimant
  // releases its grant right away, so the dip in bytes() is transient
  // (the broker re-grows the hog immediately) and a poll could miss it.
  JoinRequest a;
  a.name = "hog";
  a.min_grant_bytes = 256 * kKiB;
  a.desired_grant_bytes = 1 * kMiB;
  a.body = [](QueryContext& ctx) -> StatusOr<uint64_t> {
    for (int i = 0; i < 5000; ++i) {
      if (ctx.grant().revokes() > 0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return ctx.grant_bytes();
  };
  ASSERT_TRUE(sched.Submit(std::move(a)).ok());

  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  JoinRequest b;
  b.name = "claimant";
  b.min_grant_bytes = 512 * kKiB;  // forces a revoke of hog's surplus
  b.desired_grant_bytes = 512 * kKiB;
  b.body = [](QueryContext& ctx) -> StatusOr<uint64_t> {
    return ctx.grant_bytes();
  };
  ASSERT_TRUE(sched.Submit(std::move(b)).ok());

  ServiceStats stats = sched.Drain();
  EXPECT_EQ(stats.completed, 2u);
  for (const QueryStats& qs : stats.queries) {
    if (qs.name == "hog") {
      EXPECT_GE(qs.grant_revokes, 1u);
      EXPECT_LT(qs.grant_low_bytes, qs.grant_initial_bytes);
    }
    if (qs.name == "claimant") {
      EXPECT_GE(qs.grant_initial_bytes, 512 * kKiB);
    }
  }
  EXPECT_GE(sched.broker().total_revokes(), 1u);
}

}  // namespace
}  // namespace hashjoin
