// Tests of the execution-policy dispatch layer (src/join/exec_policy.h)
// and the kernel-state hygiene invariants it relies on:
//  - Scheme <-> name round-trips through the single shared table; an
//    unknown name fails without touching the output.
//  - Two consecutive probe batches through every scheme produce
//    identical match counts (ResetForTuple leaves no state behind), and
//    the stage-2 claim / stage-3 release ledger balances to zero.
//  - The claimed-output ledger equals the simulator's own prefetch
//    count: the delta of prefetches_issued between prefetch_output
//    on/off runs is exactly the lines the kernel claims.
//  - AggregateRelation produces the same groups under every scheme.

#include <cstring>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "gtest/gtest.h"
#include "join/exec_policy.h"
#include "join/grace.h"
#include "mem/memory_model.h"
#include "simcache/memory_sim.h"
#include "util/bitops.h"
#include "util/random.h"
#include "workload/generator.h"

namespace hashjoin {
namespace {

// ---------- scheme table round-trips ----------

TEST(SchemeTableTest, NameParsesBackToEveryScheme) {
  for (Scheme s : {Scheme::kBaseline, Scheme::kSimple, Scheme::kGroup,
                   Scheme::kSwp, Scheme::kCoro}) {
    Scheme parsed;
    ASSERT_TRUE(ParseScheme(SchemeName(s), &parsed)) << SchemeName(s);
    EXPECT_EQ(parsed, s);
  }
}

TEST(SchemeTableTest, UnknownNameFailsWithoutTouchingOutput) {
  Scheme s = Scheme::kSwp;
  EXPECT_FALSE(ParseScheme("amac", &s));
  EXPECT_FALSE(ParseScheme("", &s));
  EXPECT_EQ(s, Scheme::kSwp);
}

TEST(SchemeTableTest, NameListNamesEveryScheme) {
  std::string list = SchemeNameList();
  for (Scheme s : {Scheme::kBaseline, Scheme::kSimple, Scheme::kGroup,
                   Scheme::kSwp, Scheme::kCoro}) {
    EXPECT_NE(list.find(SchemeName(s)), std::string::npos) << list;
  }
}

TEST(SchemeTableTest, AllSchemesAreAvailable) {
  for (Scheme s : AllSchemes()) {
    EXPECT_TRUE(SchemeAvailable(s)) << SchemeName(s);
  }
#if HASHJOIN_HAS_COROUTINES
  EXPECT_EQ(AllSchemes().size(), 5u);
#else
  EXPECT_EQ(AllSchemes().size(), 4u);
  EXPECT_FALSE(SchemeAvailable(Scheme::kCoro));
#endif
}

// ---------- two-batch state hygiene ----------

struct BatchResult {
  uint64_t matches1 = 0;
  uint64_t matches2 = 0;
  ProbeStats stats1;
  ProbeStats stats2;
};

// Probes two batches back to back under `scheme` against one shared
// hash table, in the simulator. State pools are per-pass, so the second
// batch catches any state a scheme forgot to reset at the end of the
// first (the kernel-state hygiene ResetForTuple guards).
BatchResult RunTwoBatches(Scheme scheme, const JoinWorkload& w,
                          const Relation& probe2, const HashTable& ht,
                          uint32_t tuple_size) {
  sim::MemorySim simulator{sim::SimConfig{}};
  SimMemory mm(&simulator);
  KernelParams params;
  params.group_size = 7;
  params.prefetch_distance = 3;
  BatchResult r;
  Relation out1(ConcatSchema(w.build.schema(), w.probe.schema()));
  r.matches1 = ProbePartition(mm, scheme, w.probe, ht, tuple_size, params,
                              &out1, &r.stats1);
  Relation out2(ConcatSchema(w.build.schema(), w.probe.schema()));
  r.matches2 = ProbePartition(mm, scheme, probe2, ht, tuple_size, params,
                              &out2, &r.stats2);
  return r;
}

TEST(TwoBatchRegressionTest, AllSchemesAgreeAndLedgerBalances) {
  WorkloadSpec spec;
  spec.num_build_tuples = 4000;
  spec.tuple_size = 24;
  spec.matches_per_build = 2.0;
  spec.probe_match_fraction = 0.7;
  JoinWorkload w = GenerateJoinWorkload(spec);
  // Second batch: skewed keys in the build range, so batch 2 has a
  // different match/miss mix than batch 1.
  Relation probe2 = GenerateSkewedRelation(5000, 24, 0.9, 2000, 71);

  HashTable ht(ChooseBucketCount(w.build.num_tuples(), 31));
  {
    sim::MemorySim simulator{sim::SimConfig{}};
    SimMemory mm(&simulator);
    BuildBaseline(mm, w.build, &ht, KernelParams{});
  }

  BatchResult base =
      RunTwoBatches(Scheme::kBaseline, w, probe2, ht, spec.tuple_size);
  EXPECT_EQ(base.matches1, w.expected_matches);
  BatchResult group;
  for (Scheme s : AllSchemes()) {
    BatchResult r = RunTwoBatches(s, w, probe2, ht, spec.tuple_size);
    EXPECT_EQ(r.matches1, base.matches1) << SchemeName(s);
    EXPECT_EQ(r.matches2, base.matches2) << SchemeName(s);
    EXPECT_EQ(r.stats1.output_tuples, r.matches1) << SchemeName(s);
    EXPECT_EQ(r.stats2.output_tuples, r.matches2) << SchemeName(s);
    // Every stage-2 claim must be released by its stage 3 — across both
    // batches and every interleaving.
    EXPECT_EQ(r.stats1.leaked_out_bytes, 0u) << SchemeName(s);
    EXPECT_EQ(r.stats2.leaked_out_bytes, 0u) << SchemeName(s);
    if (s == Scheme::kGroup) group = r;
    // All prefetching schemes claim the same output *bytes* per tuple;
    // the line counts differ only where a claim straddles a line
    // boundary, which depends on the output offset at claim time and
    // hence the interleaving. Each tuple contributes at most one extra
    // straddled line, so the schemes' totals agree to within the number
    // of output tuples in the batch.
    if (s == Scheme::kSwp || s == Scheme::kCoro) {
      EXPECT_NEAR(static_cast<double>(r.stats1.claimed_prefetch_lines),
                  static_cast<double>(group.stats1.claimed_prefetch_lines),
                  static_cast<double>(r.matches1))
          << SchemeName(s);
      EXPECT_NEAR(static_cast<double>(r.stats2.claimed_prefetch_lines),
                  static_cast<double>(group.stats2.claimed_prefetch_lines),
                  static_cast<double>(r.matches2))
          << SchemeName(s);
      EXPECT_GT(r.stats1.claimed_prefetch_lines, 0u) << SchemeName(s);
    }
    // Simple prefetching (§7.1) only prefetches input pages and bucket
    // headers — it never claims output-tail lines.
    if (s == Scheme::kBaseline || s == Scheme::kSimple) {
      EXPECT_EQ(r.stats1.claimed_prefetch_lines, 0u) << SchemeName(s);
    }
  }
  // Baseline never prefetches, so it claims nothing; the prefetching
  // schemes must have claimed real output lines on a matching workload.
  EXPECT_EQ(base.stats1.claimed_prefetch_lines, 0u);
  EXPECT_GT(group.stats1.claimed_prefetch_lines, 0u);
}

// ---------- claimed-ledger vs. simulator crosscheck ----------

TEST(ClaimedLedgerCrosscheckTest, LedgerEqualsSimPrefetchDelta) {
  WorkloadSpec spec;
  spec.num_build_tuples = 3000;
  spec.tuple_size = 20;
  spec.matches_per_build = 2.0;
  JoinWorkload w = GenerateJoinWorkload(spec);
  HashTable ht(ChooseBucketCount(w.build.num_tuples(), 31));
  {
    sim::MemorySim simulator{sim::SimConfig{}};
    SimMemory mm(&simulator);
    BuildBaseline(mm, w.build, &ht, KernelParams{});
  }

  // One probe pass under `scheme`, returning the simulator's prefetch
  // count and the kernel's claimed-lines ledger. With prefetch_output
  // off, the only dropped prefetches are the output-tail ones — all
  // other prefetch targets live in the shared hash table, at identical
  // addresses in both runs.
  auto probe_run = [&](Scheme scheme, bool prefetch_output) {
    sim::MemorySim simulator{sim::SimConfig{}};
    SimMemory mm(&simulator);
    KernelParams params;
    params.group_size = 11;
    params.prefetch_distance = 2;
    params.prefetch_output = prefetch_output;
    Relation out(ConcatSchema(w.build.schema(), w.probe.schema()));
    ProbeStats stats;
    uint64_t n = ProbePartition(mm, scheme, w.probe, ht, spec.tuple_size,
                                params, &out, &stats);
    EXPECT_EQ(n, w.expected_matches) << SchemeName(scheme);
    return std::pair<uint64_t, uint64_t>(
        simulator.stats().prefetches_issued, stats.claimed_prefetch_lines);
  };

  for (Scheme s : AllSchemes()) {
    if (s == Scheme::kBaseline) continue;  // never prefetches
    auto [issued_on, claimed_on] = probe_run(s, true);
    auto [issued_off, claimed_off] = probe_run(s, false);
    EXPECT_EQ(claimed_off, 0u) << SchemeName(s);
    EXPECT_EQ(issued_on - issued_off, claimed_on) << SchemeName(s);
    // Simple prefetching never touches the output tail (§7.1), so its
    // ledger is legitimately zero; the stage-2 schemes must claim.
    if (s != Scheme::kSimple) {
      EXPECT_GT(claimed_on, 0u) << SchemeName(s);
    }
  }
}

// ---------- aggregate dispatch parity ----------

TEST(AggregatePolicyTest, AllSchemesProduceTheSameGroups) {
  Relation facts(Schema({{"key", AttrType::kInt32, 4},
                         {"value", AttrType::kInt64, 8},
                         {"pad", AttrType::kFixedChar, 8}}));
  Rng rng(11);
  const uint64_t kGroups = 700;
  std::map<uint32_t, int64_t> expected_sum;
  for (uint64_t i = 0; i < 50'000; ++i) {
    uint8_t t[20] = {};
    uint32_t key = uint32_t(rng.NextBounded(kGroups));
    int64_t value = int64_t(rng.NextBounded(100));
    std::memcpy(t, &key, 4);
    std::memcpy(t + 4, &value, 8);
    facts.Append(t, sizeof(t), HashKey32(key));
    expected_sum[key] += value;
  }

  RealMemory mm;
  KernelParams params;
  params.group_size = 9;
  params.prefetch_distance = 4;
  for (Scheme s : AllSchemes()) {
    HashAggTable agg(NextRelativelyPrime(kGroups, 31));
    AggregateRelation(mm, s, facts, 4, &agg, params);
    EXPECT_EQ(agg.num_groups(), expected_sum.size()) << SchemeName(s);
  }
}

// ---------- coroutine pipeline specifics ----------

#if HASHJOIN_HAS_COROUTINES

TEST(CoroPipelineTest, OutputOrderMatchesSerialProbe) {
  WorkloadSpec spec;
  spec.num_build_tuples = 2000;
  spec.tuple_size = 16;
  spec.matches_per_build = 1.0;
  JoinWorkload w = GenerateJoinWorkload(spec);
  RealMemory mm;
  HashTable ht(ChooseBucketCount(w.build.num_tuples(), 31));
  BuildCoro(mm, w.build, &ht, KernelParams{});
  Relation out_serial(ConcatSchema(w.build.schema(), w.probe.schema()));
  Relation out_coro(ConcatSchema(w.build.schema(), w.probe.schema()));
  KernelParams params;
  uint64_t serial = ProbeBaseline(mm, w.probe, ht, spec.tuple_size, params,
                                  &out_serial);
  KernelParams coro_params;
  coro_params.group_size = 5;
  uint64_t coro = ProbeCoro(mm, w.probe, ht, spec.tuple_size, coro_params,
                            &out_coro);
  EXPECT_EQ(coro, serial);
  // Round-robin scheduling preserves input order, so the materialized
  // outputs are byte-identical, not merely equal in count.
  ASSERT_EQ(out_coro.num_tuples(), out_serial.num_tuples());
  std::vector<std::vector<uint8_t>> a, b;
  out_serial.ForEachTuple([&](const uint8_t* t, uint16_t len, uint32_t) {
    a.emplace_back(t, t + len);
  });
  out_coro.ForEachTuple([&](const uint8_t* t, uint16_t len, uint32_t) {
    b.emplace_back(t, t + len);
  });
  EXPECT_EQ(a, b);
}

TEST(CoroPipelineTest, ChargesCoroOverheadPerResume) {
  // Every chain resume is one scheduler step: the simulated busy cycles
  // must include cost_stage_overhead_coro for each, making the policy's
  // overhead observable to the cost model.
  sim::SimConfig cfg;
  sim::MemorySim simulator(cfg);
  SimMemory mm(&simulator);
  uint64_t resumes = 0;
  RunCoroPipeline(mm, 4, [&](uint32_t) -> KernelCoro {
    return [](uint64_t* count) -> KernelCoro {
      for (int i = 0; i < 3; ++i) {
        ++*count;
        co_await KernelCoro::NextStage{};
      }
      ++*count;
    }(&resumes);
  });
  EXPECT_EQ(resumes, 4u * 4u);
  // Each of the 4 chains resumes 4 times (3 suspensions + final run)
  // plus the final done-detection sweep costs nothing extra.
  EXPECT_GE(simulator.stats().busy_cycles,
            16u * cfg.cost_stage_overhead_coro);
}

#endif  // HASHJOIN_HAS_COROUTINES

}  // namespace
}  // namespace hashjoin
