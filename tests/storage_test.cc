#include <cstring>
#include <numeric>
#include <vector>

#include "gtest/gtest.h"
#include "storage/buffer_manager.h"
#include "storage/disk.h"
#include "storage/relation.h"
#include "storage/schema.h"
#include "storage/slotted_page.h"
#include "util/aligned.h"

namespace hashjoin {
namespace {

TEST(SchemaTest, KeyPayloadLayout) {
  Schema s = Schema::KeyPayload(100);
  EXPECT_EQ(s.num_attrs(), 2u);
  EXPECT_EQ(s.attr(0).name, "key");
  EXPECT_EQ(s.offset(0), 0u);
  EXPECT_EQ(s.offset(1), 4u);
  EXPECT_EQ(s.fixed_size(), 100u);
  EXPECT_FALSE(s.has_varlen());
}

TEST(SchemaTest, MixedTypesOffsets) {
  Schema s({{"a", AttrType::kInt64, 8},
            {"b", AttrType::kInt32, 4},
            {"c", AttrType::kFixedChar, 10},
            {"d", AttrType::kVarChar, 100}});
  EXPECT_EQ(s.offset(0), 0u);
  EXPECT_EQ(s.offset(1), 8u);
  EXPECT_EQ(s.offset(2), 12u);
  EXPECT_EQ(s.offset(3), 22u);
  EXPECT_EQ(s.fixed_size(), 26u);
  EXPECT_TRUE(s.has_varlen());
}

TEST(SchemaTest, FindAttr) {
  Schema s = Schema::KeyPayload(20);
  EXPECT_EQ(s.FindAttr("key"), 0);
  EXPECT_EQ(s.FindAttr("payload"), 1);
  EXPECT_EQ(s.FindAttr("missing"), -1);
}

TEST(SlottedPageTest, FormatAndFill) {
  std::vector<uint8_t> buf(1024);
  SlottedPage page = SlottedPage::Format(buf.data(), 1024);
  EXPECT_EQ(page.slot_count(), 0);
  EXPECT_EQ(page.page_size(), 1024u);

  const char* t1 = "hello tuple one";
  int s1 = page.AddTuple(t1, 16, 0xabcd);
  ASSERT_EQ(s1, 0);
  uint16_t len = 0;
  const uint8_t* got = page.GetTuple(0, &len);
  EXPECT_EQ(len, 16);
  EXPECT_EQ(std::memcmp(got, t1, 16), 0);
  EXPECT_EQ(page.GetHashCode(0), 0xabcdu);
}

TEST(SlottedPageTest, FillsUntilFull) {
  std::vector<uint8_t> buf(1024);
  SlottedPage page = SlottedPage::Format(buf.data(), 1024);
  char tuple[100] = {0};
  int added = 0;
  while (page.AddTuple(tuple, 100, 0) >= 0) ++added;
  // 1024 bytes: 16 header + n*(100 + 8 slot) -> n = 9.
  EXPECT_EQ(added, 9);
  EXPECT_EQ(page.slot_count(), 9);
}

TEST(SlottedPageTest, TuplesDoNotOverlap) {
  std::vector<uint8_t> buf(2048);
  SlottedPage page = SlottedPage::Format(buf.data(), 2048);
  for (int i = 0; i < 10; ++i) {
    uint8_t tuple[64];
    std::memset(tuple, i, sizeof(tuple));
    ASSERT_GE(page.AddTuple(tuple, 64, uint32_t(i)), 0);
  }
  for (int i = 0; i < 10; ++i) {
    uint16_t len;
    const uint8_t* t = page.GetTuple(i, &len);
    ASSERT_EQ(len, 64);
    for (int b = 0; b < 64; ++b) ASSERT_EQ(t[b], uint8_t(i));
    EXPECT_EQ(page.GetHashCode(i), uint32_t(i));
  }
}

TEST(SlottedPageTest, SetHashCode) {
  std::vector<uint8_t> buf(512);
  SlottedPage page = SlottedPage::Format(buf.data(), 512);
  char t[8] = {0};
  page.AddTuple(t, 8, 0);
  page.SetHashCode(0, 77);
  EXPECT_EQ(page.GetHashCode(0), 77u);
}

TEST(SlottedPageTest, ChecksumRoundTrips) {
  std::vector<uint8_t> buf(1024);
  SlottedPage page = SlottedPage::Format(buf.data(), 1024);
  char t[32] = "some tuple bytes";
  page.AddTuple(t, 32, 0x1234);
  page.StampChecksum();
  EXPECT_TRUE(page.VerifyChecksum());
  // Stamping must not change what is summed: re-stamp is a fixed point.
  uint32_t first = page.ComputeChecksum();
  page.StampChecksum();
  EXPECT_EQ(page.ComputeChecksum(), first);
  EXPECT_TRUE(page.VerifyChecksum());
}

TEST(SlottedPageTest, ChecksumDetectsCorruption) {
  std::vector<uint8_t> buf(1024);
  SlottedPage page = SlottedPage::Format(buf.data(), 1024);
  char t[16] = {0};
  page.AddTuple(t, 16, 7);
  page.StampChecksum();
  ASSERT_TRUE(page.VerifyChecksum());
  buf[600] ^= 0x01;  // single bit flip in the free area
  EXPECT_FALSE(page.VerifyChecksum());
  buf[600] ^= 0x01;
  EXPECT_TRUE(page.VerifyChecksum());
  // Mutating after the stamp (the footgun the API comment warns about)
  // is also caught.
  page.AddTuple(t, 16, 8);
  EXPECT_FALSE(page.VerifyChecksum());
}

TEST(SlottedPageTest, AllocTupleGivesWritablePointer) {
  std::vector<uint8_t> buf(512);
  SlottedPage page = SlottedPage::Format(buf.data(), 512);
  int idx = -1;
  uint8_t* dst = page.AllocTuple(32, 5, &idx);
  ASSERT_NE(dst, nullptr);
  EXPECT_EQ(idx, 0);
  std::memset(dst, 0x5a, 32);
  uint16_t len;
  EXPECT_EQ(page.GetTuple(0, &len), dst);
}

TEST(RelationTest, AppendAcrossPages) {
  Relation rel(Schema::KeyPayload(100), 1024);
  std::vector<uint8_t> tuple(100, 1);
  for (int i = 0; i < 100; ++i) rel.Append(tuple.data(), 100, uint32_t(i));
  EXPECT_EQ(rel.num_tuples(), 100u);
  EXPECT_EQ(rel.data_bytes(), 10000u);
  // 9 tuples per 1KB page -> ceil(100/9) = 12 pages.
  EXPECT_EQ(rel.num_pages(), 12u);
}

TEST(RelationTest, ForEachTupleVisitsAllInOrder) {
  Relation rel(Schema::KeyPayload(16), 512);
  for (uint32_t i = 0; i < 50; ++i) {
    uint8_t tuple[16];
    std::memcpy(tuple, &i, 4);
    std::memset(tuple + 4, 0, 12);
    rel.Append(tuple, 16, i * 2);
  }
  uint32_t expect = 0;
  rel.ForEachTuple([&](const uint8_t* t, uint16_t len, uint32_t hash) {
    uint32_t key;
    std::memcpy(&key, t, 4);
    EXPECT_EQ(key, expect);
    EXPECT_EQ(len, 16);
    EXPECT_EQ(hash, expect * 2);
    ++expect;
  });
  EXPECT_EQ(expect, 50u);
}

TEST(RelationTest, AdoptPageAccountsTuples) {
  Relation rel(Schema::KeyPayload(16), 512);
  void* raw = AlignedAlloc(512, 512);
  SlottedPage pg = SlottedPage::Format(raw, 512);
  char t[16] = {0};
  pg.AddTuple(t, 16, 1);
  pg.AddTuple(t, 16, 2);
  rel.AdoptPage(AlignedBuffer<uint8_t>(static_cast<uint8_t*>(raw)));
  EXPECT_EQ(rel.num_tuples(), 2u);
  EXPECT_EQ(rel.data_bytes(), 32u);
  EXPECT_EQ(rel.num_pages(), 1u);
}

TEST(RelationTest, AdoptPageKeepsAppendPageLast) {
  Relation rel(Schema::KeyPayload(16), 512);
  char t[16] = {1};
  rel.Append(t, 16, 0);  // opens an append page
  const uint8_t* tail_before = rel.PeekAppendAddr();

  void* raw = AlignedAlloc(512, 512);
  SlottedPage pg = SlottedPage::Format(raw, 512);
  pg.AddTuple(t, 16, 0);
  rel.AdoptPage(AlignedBuffer<uint8_t>(static_cast<uint8_t*>(raw)));

  EXPECT_EQ(rel.PeekAppendAddr(), tail_before);
  rel.Append(t, 16, 0);
  EXPECT_EQ(rel.num_tuples(), 3u);
}

TEST(RelationTest, PeekAppendAddrMatchesNextAlloc) {
  Relation rel(Schema::KeyPayload(16), 512);
  char t[16] = {0};
  rel.Append(t, 16, 0);
  const uint8_t* peek = rel.PeekAppendAddr();
  uint8_t* dst = rel.AllocAppend(16, 0);
  EXPECT_EQ(dst, peek);
}

TEST(RelationTest, ClearReleasesEverything) {
  Relation rel(Schema::KeyPayload(16), 512);
  char t[16] = {0};
  rel.Append(t, 16, 0);
  rel.Clear();
  EXPECT_EQ(rel.num_tuples(), 0u);
  EXPECT_EQ(rel.num_pages(), 0u);
  EXPECT_EQ(rel.PeekAppendAddr(), nullptr);
}

TEST(SimulatedDiskTest, WriteThenReadRoundTrips) {
  DiskConfig cfg;
  cfg.bandwidth_mb_per_s = 10000;  // fast for tests
  cfg.request_latency_us = 0;
  SimulatedDisk disk(cfg);
  std::vector<uint8_t> page(cfg.page_size, 0x77);
  ASSERT_TRUE(disk.WritePage(3, page.data()).ok());
  std::vector<uint8_t> got(cfg.page_size, 0);
  ASSERT_TRUE(disk.ReadPage(3, got.data()).ok());
  EXPECT_EQ(got, page);
  EXPECT_GE(disk.num_pages(), 4u);
}

TEST(SimulatedDiskTest, ReadPastEndFails) {
  DiskConfig cfg;
  cfg.bandwidth_mb_per_s = 10000;
  cfg.request_latency_us = 0;
  SimulatedDisk disk(cfg);
  std::vector<uint8_t> buf(cfg.page_size);
  EXPECT_EQ(disk.ReadPage(0, buf.data()).code(), StatusCode::kOutOfRange);
}

TEST(SimulatedDiskTest, TracksBusyTime) {
  DiskConfig cfg;
  cfg.bandwidth_mb_per_s = 100;
  cfg.request_latency_us = 10;
  SimulatedDisk disk(cfg);
  std::vector<uint8_t> page(cfg.page_size, 1);
  ASSERT_TRUE(disk.WritePage(0, page.data()).ok());
  EXPECT_GT(disk.busy_seconds(), 0.0);
}

class BufferManagerTest : public ::testing::Test {
 protected:
  BufferManagerConfig FastConfig(uint32_t disks) {
    BufferManagerConfig cfg;
    cfg.num_disks = disks;
    cfg.disk.bandwidth_mb_per_s = 20000;
    cfg.disk.request_latency_us = 0;
    cfg.stripe_unit_pages = 4;
    cfg.io_prefetch_depth = 4;
    return cfg;
  }

  // Advances a scan one page, asserting the I/O itself succeeded.
  static const uint8_t* MustNext(BufferManager::Scanner& scan) {
    const uint8_t* page = nullptr;
    Status st = scan.NextPage(&page);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return page;
  }
};

TEST_F(BufferManagerTest, WriteThenScanRoundTrips) {
  BufferManager bm(FastConfig(3));
  auto file = bm.CreateFile();
  const uint32_t n = 64;
  std::vector<uint8_t> page(bm.config().disk.page_size);
  for (uint32_t p = 0; p < n; ++p) {
    std::memset(page.data(), int(p), page.size());
    bm.WritePageAsync(file, p, page.data());
  }
  ASSERT_TRUE(bm.FlushWrites().ok());
  EXPECT_EQ(bm.FileNumPages(file), n);

  auto scan = bm.OpenScan(file);
  for (uint32_t p = 0; p < n; ++p) {
    const uint8_t* got = MustNext(scan);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got[0], uint8_t(p)) << "page " << p;
    EXPECT_EQ(got[100], uint8_t(p));
  }
  EXPECT_EQ(MustNext(scan), nullptr);
}

TEST_F(BufferManagerTest, MultipleFilesIndependent) {
  BufferManager bm(FastConfig(2));
  auto f1 = bm.CreateFile();
  auto f2 = bm.CreateFile();
  std::vector<uint8_t> page(bm.config().disk.page_size);
  std::memset(page.data(), 0x11, page.size());
  bm.WritePageAsync(f1, 0, page.data());
  std::memset(page.data(), 0x22, page.size());
  bm.WritePageAsync(f2, 0, page.data());
  ASSERT_TRUE(bm.FlushWrites().ok());
  auto s1 = bm.OpenScan(f1);
  auto s2 = bm.OpenScan(f2);
  EXPECT_EQ(MustNext(s1)[0], 0x11);
  EXPECT_EQ(MustNext(s2)[0], 0x22);
}

TEST_F(BufferManagerTest, EmptyFileScanReturnsNull) {
  BufferManager bm(FastConfig(1));
  auto file = bm.CreateFile();
  auto scan = bm.OpenScan(file);
  EXPECT_EQ(MustNext(scan), nullptr);
}

TEST_F(BufferManagerTest, StripesAcrossDisks) {
  BufferManagerConfig cfg = FastConfig(4);
  BufferManager bm(cfg);
  auto file = bm.CreateFile();
  std::vector<uint8_t> page(cfg.disk.page_size, 1);
  // 32 pages over 4 disks with 4-page stripes: 8 pages per disk.
  for (uint32_t p = 0; p < 32; ++p) bm.WritePageAsync(file, p, page.data());
  ASSERT_TRUE(bm.FlushWrites().ok());
  // All pages must read back; striping itself is internal, but busy time
  // should be spread (max per-disk busy < total would be with 1 disk).
  auto scan = bm.OpenScan(file);
  int count = 0;
  while (MustNext(scan) != nullptr) ++count;
  EXPECT_EQ(count, 32);
}

TEST_F(BufferManagerTest, TracksMainStall) {
  BufferManagerConfig cfg = FastConfig(1);
  cfg.disk.bandwidth_mb_per_s = 50;  // slow enough to cause waits
  BufferManager bm(cfg);
  auto file = bm.CreateFile();
  std::vector<uint8_t> page(cfg.disk.page_size, 1);
  for (uint32_t p = 0; p < 16; ++p) bm.WritePageAsync(file, p, page.data());
  ASSERT_TRUE(bm.FlushWrites().ok());
  auto scan = bm.OpenScan(file);
  while (MustNext(scan) != nullptr) {
  }
  EXPECT_GT(bm.main_stall_seconds(), 0.0);
  EXPECT_GT(bm.max_disk_busy_seconds(), 0.0);
}

TEST_F(BufferManagerTest, ScriptedReadFaultIsRetriedTransparently) {
  BufferManagerConfig cfg = FastConfig(1);
  // Fail read ops by exact index: writes come first (ops 0..3), so the
  // scripted indices land on the read-back phase regardless of timing —
  // the op counter is shared across reads and writes on the one disk.
  cfg.disk.fault.scripted_error_ops = {4, 6};
  BufferManager bm(cfg);
  auto file = bm.CreateFile();
  std::vector<uint8_t> page(cfg.disk.page_size);
  for (uint32_t p = 0; p < 4; ++p) {
    std::memset(page.data(), int(p + 1), page.size());
    bm.WritePageAsync(file, p, page.data());
  }
  ASSERT_TRUE(bm.FlushWrites().ok());
  auto scan = bm.OpenScan(file);
  for (uint32_t p = 0; p < 4; ++p) {
    const uint8_t* got = MustNext(scan);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got[0], uint8_t(p + 1));
  }
  IoRecoveryStats stats = bm.recovery_stats();
  EXPECT_EQ(stats.read_retries, 2u);
  EXPECT_EQ(stats.injected_faults, 2u);
  EXPECT_EQ(stats.checksum_failures, 0u);
}

TEST_F(BufferManagerTest, ProbabilisticFaultsRecoverDeterministically) {
  BufferManagerConfig cfg = FastConfig(2);
  cfg.disk.fault.read_error_rate = 0.2;
  cfg.disk.fault.write_error_rate = 0.2;
  cfg.disk.fault.seed = 42;
  BufferManager bm(cfg);
  auto file = bm.CreateFile();
  std::vector<uint8_t> page(cfg.disk.page_size);
  const uint32_t n = 32;
  for (uint32_t p = 0; p < n; ++p) {
    std::memset(page.data(), int(p), page.size());
    bm.WritePageAsync(file, p, page.data());
  }
  ASSERT_TRUE(bm.FlushWrites().ok());
  auto scan = bm.OpenScan(file);
  for (uint32_t p = 0; p < n; ++p) {
    const uint8_t* got = MustNext(scan);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got[0], uint8_t(p));
  }
  EXPECT_EQ(MustNext(scan), nullptr);
  IoRecoveryStats stats = bm.recovery_stats();
  EXPECT_GT(stats.injected_faults, 0u);
  EXPECT_GT(stats.read_retries + stats.write_retries, 0u);
}

TEST_F(BufferManagerTest, TornWriteIsCaughtByWriteVerify) {
  BufferManagerConfig cfg = FastConfig(1);
  cfg.disk.fault.torn_page_rate = 1.0;  // every eligible write tears
  cfg.disk.fault.max_consecutive_faults = 1;  // every other one, really
  cfg.verify_writes = true;
  BufferManager bm(cfg);
  auto file = bm.CreateFile();
  std::vector<uint8_t> page(cfg.disk.page_size, 0x5a);
  for (uint32_t p = 0; p < 4; ++p) bm.WritePageAsync(file, p, page.data());
  ASSERT_TRUE(bm.FlushWrites().ok());
  IoRecoveryStats stats = bm.recovery_stats();
  EXPECT_GT(stats.write_verify_failures, 0u);
  // Read everything back clean: the rewrites repaired every torn page.
  auto scan = bm.OpenScan(file);
  while (const uint8_t* got = MustNext(scan)) {
    EXPECT_EQ(got[0], 0x5a);
    EXPECT_EQ(got[cfg.disk.page_size - 1], 0x5a);
  }
}

TEST_F(BufferManagerTest, TornWriteWithoutVerifySurfacesDataLoss) {
  BufferManagerConfig cfg = FastConfig(1);
  cfg.disk.fault.torn_page_rate = 1.0;
  cfg.disk.fault.max_consecutive_faults = 1;
  ASSERT_FALSE(cfg.verify_writes);  // checksum-on-read is the only net
  BufferManager bm(cfg);
  auto file = bm.CreateFile();
  std::vector<uint8_t> page(cfg.disk.page_size, 0x5a);
  for (uint32_t p = 0; p < 4; ++p) bm.WritePageAsync(file, p, page.data());
  // The tear reports success, so the write path is clean...
  ASSERT_TRUE(bm.FlushWrites().ok());
  // ...and the damage is only detectable when the page is read back:
  // its stored bytes are wrong, so retrying cannot fix it -> kDataLoss.
  auto scan = bm.OpenScan(file);
  const uint8_t* got = nullptr;
  Status st;
  for (uint32_t p = 0; p < 4 && st.ok(); ++p) st = scan.NextPage(&got);
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
  EXPECT_GT(bm.recovery_stats().checksum_failures, 0u);
}

}  // namespace
}  // namespace hashjoin
