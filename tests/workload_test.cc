#include <cstring>
#include <map>
#include <set>

#include "gtest/gtest.h"
#include "hash/hash_func.h"
#include "join/join_common.h"
#include "workload/generator.h"

namespace hashjoin {
namespace {

uint32_t KeyOf(const uint8_t* t) {
  uint32_t k;
  std::memcpy(&k, t, 4);
  return k;
}

TEST(WorkloadSpecTest, ProbeCountDerivation) {
  WorkloadSpec spec;
  spec.num_build_tuples = 1000;
  spec.matches_per_build = 2.0;
  spec.build_match_fraction = 1.0;
  spec.probe_match_fraction = 1.0;
  EXPECT_EQ(spec.NumProbeTuples(), 2000u);
  spec.probe_match_fraction = 0.5;
  EXPECT_EQ(spec.NumProbeTuples(), 4000u);
  spec.build_match_fraction = 0.5;
  EXPECT_EQ(spec.NumProbeTuples(), 2000u);
}

TEST(GeneratorTest, ExactMatchCountPivot) {
  WorkloadSpec spec;
  spec.num_build_tuples = 5000;
  spec.tuple_size = 100;
  spec.matches_per_build = 2.0;
  JoinWorkload w = GenerateJoinWorkload(spec);
  EXPECT_EQ(w.build.num_tuples(), 5000u);
  EXPECT_EQ(w.probe.num_tuples(), 10000u);
  EXPECT_EQ(w.expected_matches, 10000u);
}

TEST(GeneratorTest, BuildKeysUniqueAndDense) {
  WorkloadSpec spec;
  spec.num_build_tuples = 3000;
  spec.tuple_size = 16;
  JoinWorkload w = GenerateJoinWorkload(spec);
  std::set<uint32_t> keys;
  w.build.ForEachTuple([&](const uint8_t* t, uint16_t, uint32_t) {
    keys.insert(KeyOf(t));
  });
  EXPECT_EQ(keys.size(), 3000u);
  EXPECT_EQ(*keys.begin(), 1u);
  EXPECT_EQ(*keys.rbegin(), 3000u);
}

TEST(GeneratorTest, ProbeMatchSemantics) {
  // Every matched probe key maps to exactly one build key; unmatched
  // probe keys are outside the build range.
  WorkloadSpec spec;
  spec.num_build_tuples = 2000;
  spec.tuple_size = 16;
  spec.matches_per_build = 3.0;
  spec.probe_match_fraction = 0.75;
  JoinWorkload w = GenerateJoinWorkload(spec);
  uint64_t matched = 0;
  w.probe.ForEachTuple([&](const uint8_t* t, uint16_t, uint32_t) {
    if (KeyOf(t) <= 2000) ++matched;
  });
  EXPECT_EQ(matched, w.expected_matches);
  EXPECT_NEAR(double(matched) / double(w.probe.num_tuples()), 0.75, 0.01);
}

TEST(GeneratorTest, FractionalMatchesPerBuild) {
  WorkloadSpec spec;
  spec.num_build_tuples = 1000;
  spec.tuple_size = 16;
  spec.matches_per_build = 2.5;
  JoinWorkload w = GenerateJoinWorkload(spec);
  EXPECT_NEAR(double(w.expected_matches), 2500.0, 10.0);
}

TEST(GeneratorTest, MemoizedHashCodesAreCorrect) {
  WorkloadSpec spec;
  spec.num_build_tuples = 500;
  spec.tuple_size = 20;
  JoinWorkload w = GenerateJoinWorkload(spec);
  auto check = [](const Relation& rel) {
    rel.ForEachTuple([&](const uint8_t* t, uint16_t, uint32_t hash) {
      ASSERT_EQ(hash, HashKey32(KeyOf(t)));
    });
  };
  check(w.build);
  check(w.probe);
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  WorkloadSpec spec;
  spec.num_build_tuples = 500;
  spec.tuple_size = 16;
  spec.seed = 77;
  JoinWorkload a = GenerateJoinWorkload(spec);
  JoinWorkload b = GenerateJoinWorkload(spec);
  ASSERT_EQ(a.probe.num_tuples(), b.probe.num_tuples());
  std::vector<uint32_t> ka, kb;
  a.probe.ForEachTuple(
      [&](const uint8_t* t, uint16_t, uint32_t) { ka.push_back(KeyOf(t)); });
  b.probe.ForEachTuple(
      [&](const uint8_t* t, uint16_t, uint32_t) { kb.push_back(KeyOf(t)); });
  EXPECT_EQ(ka, kb);
}

TEST(GeneratorTest, ProbeOrderIsShuffled) {
  WorkloadSpec spec;
  spec.num_build_tuples = 2000;
  spec.tuple_size = 16;
  JoinWorkload w = GenerateJoinWorkload(spec);
  // Sorted order would make hash-table visits artificially local; check
  // the sequence is not sorted.
  std::vector<uint32_t> keys;
  w.probe.ForEachTuple(
      [&](const uint8_t* t, uint16_t, uint32_t) { keys.push_back(KeyOf(t)); });
  EXPECT_FALSE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(GeneratorTest, PayloadDerivedFromKey) {
  WorkloadSpec spec;
  spec.num_build_tuples = 100;
  spec.tuple_size = 32;
  JoinWorkload w = GenerateJoinWorkload(spec);
  w.build.ForEachTuple([&](const uint8_t* t, uint16_t len, uint32_t) {
    ASSERT_EQ(len, 32);
    uint8_t expect = uint8_t(KeyOf(t) * 131u + 17u);
    for (int i = 4; i < 32; ++i) ASSERT_EQ(t[i], expect);
  });
}

TEST(GeneratorTest, SourceRelationShape) {
  Relation rel = GenerateSourceRelation(5000, 60, 3);
  EXPECT_EQ(rel.num_tuples(), 5000u);
  EXPECT_EQ(rel.data_bytes(), 5000u * 60u);
}

TEST(GeneratorTest, SkewedRelationConcentratesKeys) {
  Relation rel = GenerateSkewedRelation(10000, 16, 0.99, 1000, 5);
  std::map<uint32_t, int> counts;
  rel.ForEachTuple(
      [&](const uint8_t* t, uint16_t, uint32_t) { counts[KeyOf(t)]++; });
  int max_count = 0;
  for (auto& [k, c] : counts) max_count = std::max(max_count, c);
  // Uniform would put ~10 per key; Zipf(0.99) is far hotter at the head.
  EXPECT_GT(max_count, 200);
}

// --- TupleCursor ---

TEST(TupleCursorTest, VisitsEveryTupleAndFlagsPages) {
  Relation rel(Schema::KeyPayload(16), 512);
  for (uint32_t i = 0; i < 100; ++i) {
    uint8_t t[16] = {};
    std::memcpy(t, &i, 4);
    rel.Append(t, 16, i);
  }
  TupleCursor cur(rel);
  const SlottedPage::Slot* slot;
  const uint8_t* tuple;
  bool new_page = false;
  uint32_t count = 0;
  uint32_t pages = 0;
  while (cur.Next(&slot, &tuple, &new_page)) {
    EXPECT_EQ(KeyOf(tuple), count);
    EXPECT_EQ(slot->hash_code, count);
    if (new_page) ++pages;
    ++count;
  }
  EXPECT_EQ(count, 100u);
  EXPECT_EQ(pages, rel.num_pages());
}

TEST(TupleCursorTest, EmptyRelation) {
  Relation rel(Schema::KeyPayload(16));
  TupleCursor cur(rel);
  const SlottedPage::Slot* slot;
  const uint8_t* tuple;
  EXPECT_FALSE(cur.Next(&slot, &tuple));
}

// --- OutputSink ---

TEST(OutputSinkTest, SpillsFullBuffersToDestination) {
  Relation dest(Schema::KeyPayload(64), 512);
  {
    OutputSink sink(&dest);
    for (int i = 0; i < 40; ++i) {
      uint8_t* dst = sink.Alloc(64);
      ASSERT_NE(dst, nullptr);
      std::memset(dst, i, 64);
    }
    sink.Final();
  }
  EXPECT_EQ(dest.num_tuples(), 40u);
  int i = 0;
  dest.ForEachTuple([&](const uint8_t* t, uint16_t len, uint32_t) {
    ASSERT_EQ(len, 64);
    ASSERT_EQ(t[0], uint8_t(i));
    ASSERT_EQ(t[63], uint8_t(i));
    ++i;
  });
}

TEST(OutputSinkTest, FinalOnEmptyIsNoop) {
  Relation dest(Schema::KeyPayload(64), 512);
  OutputSink sink(&dest);
  sink.Final();
  EXPECT_EQ(dest.num_tuples(), 0u);
}

TEST(OutputSinkTest, PeekAddrTracksBumpPointer) {
  Relation dest(Schema::KeyPayload(32), 512);
  OutputSink sink(&dest);
  const uint8_t* before = sink.PeekAddr();
  uint8_t* dst = sink.Alloc(32);
  EXPECT_EQ(dst, before);
  EXPECT_EQ(sink.PeekAddr(), before + 32);
  sink.Final();
}

}  // namespace
}  // namespace hashjoin
