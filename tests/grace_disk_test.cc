#include "gtest/gtest.h"
#include "join/grace_disk.h"
#include "workload/generator.h"

namespace hashjoin {
namespace {

BufferManagerConfig FastDisks(uint32_t n) {
  BufferManagerConfig cfg;
  cfg.num_disks = n;
  cfg.disk.bandwidth_mb_per_s = 20000;
  cfg.disk.request_latency_us = 0;
  return cfg;
}

class DiskGraceJoinTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(DiskGraceJoinTest, EndToEndMatchesExpected) {
  WorkloadSpec spec;
  spec.num_build_tuples = 8000;
  spec.tuple_size = 100;
  spec.matches_per_build = 2.0;
  spec.probe_match_fraction = 0.8;
  JoinWorkload w = GenerateJoinWorkload(spec);

  BufferManager bm(FastDisks(GetParam()));
  DiskGraceJoin join(&bm, 7);
  auto build = join.StoreRelation(w.build);
  auto probe = join.StoreRelation(w.probe);
  DiskJoinResult r = join.Join(build, probe);
  EXPECT_EQ(r.output_tuples, w.expected_matches);
  EXPECT_EQ(r.num_partitions, 7u);
  EXPECT_GT(r.partition_phase.elapsed_seconds, 0.0);
  EXPECT_GT(r.join_phase.elapsed_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(DiskCounts, DiskGraceJoinTest,
                         ::testing::Values(1, 2, 4));

TEST(DiskGraceJoinTest, PartitionFilesPreserveEverything) {
  Relation input = GenerateSourceRelation(5000, 100, 77);
  BufferManager bm(FastDisks(3));
  DiskGraceJoin join(&bm, 5);
  auto file = join.StoreRelation(input);
  auto parts = join.Partition(file, nullptr);
  ASSERT_EQ(parts.size(), 5u);
  uint64_t total = 0;
  for (uint32_t p = 0; p < parts.size(); ++p) {
    auto scan = bm.OpenScan(parts[p]);
    while (const uint8_t* page = scan.NextPage()) {
      SlottedPage pg = SlottedPage::Attach(const_cast<uint8_t*>(page));
      total += pg.slot_count();
      for (int s = 0; s < pg.slot_count(); ++s) {
        // Memoized hash codes route every tuple to this partition.
        ASSERT_EQ(pg.GetHashCode(s) % 5, p);
      }
    }
  }
  EXPECT_EQ(total, input.num_tuples());
}

TEST(DiskGraceJoinTest, EmptyRelationsJoinToNothing) {
  Relation empty(Schema::KeyPayload(100));
  BufferManager bm(FastDisks(2));
  DiskGraceJoin join(&bm, 3);
  auto b = join.StoreRelation(empty);
  auto p = join.StoreRelation(empty);
  DiskJoinResult r = join.Join(b, p);
  EXPECT_EQ(r.output_tuples, 0u);
}

}  // namespace
}  // namespace hashjoin
