#include "gtest/gtest.h"
#include "join/grace_disk.h"
#include "workload/generator.h"

namespace hashjoin {
namespace {

BufferManagerConfig FastDisks(uint32_t n) {
  BufferManagerConfig cfg;
  cfg.num_disks = n;
  cfg.disk.bandwidth_mb_per_s = 20000;
  cfg.disk.request_latency_us = 0;
  return cfg;
}

class DiskGraceJoinTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(DiskGraceJoinTest, EndToEndMatchesExpected) {
  WorkloadSpec spec;
  spec.num_build_tuples = 8000;
  spec.tuple_size = 100;
  spec.matches_per_build = 2.0;
  spec.probe_match_fraction = 0.8;
  JoinWorkload w = GenerateJoinWorkload(spec);

  BufferManager bm(FastDisks(GetParam()));
  DiskGraceJoin join(&bm, 7);
  auto build = join.StoreRelation(w.build);
  auto probe = join.StoreRelation(w.probe);
  ASSERT_TRUE(build.ok()) << build.status().ToString();
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  auto r = join.Join(build.value(), probe.value());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().output_tuples, w.expected_matches);
  EXPECT_EQ(r.value().num_partitions, 7u);
  EXPECT_GT(r.value().partition_phase.elapsed_seconds, 0.0);
  EXPECT_GT(r.value().join_phase.elapsed_seconds, 0.0);
  // A clean, well-balanced run needs no recovery actions at all.
  EXPECT_EQ(r.value().recovery.read_retries, 0u);
  EXPECT_EQ(r.value().recovery.checksum_failures, 0u);
  EXPECT_EQ(r.value().recovery.recursive_splits, 0u);
  EXPECT_EQ(r.value().recovery.chunked_fallbacks, 0u);
}

INSTANTIATE_TEST_SUITE_P(DiskCounts, DiskGraceJoinTest,
                         ::testing::Values(1, 2, 4));

TEST(DiskGraceJoinTest, PartitionFilesPreserveEverything) {
  Relation input = GenerateSourceRelation(5000, 100, 77);
  BufferManager bm(FastDisks(3));
  DiskGraceJoin join(&bm, 5);
  auto file = join.StoreRelation(input);
  ASSERT_TRUE(file.ok());
  auto parts_or = join.Partition(file.value(), nullptr);
  ASSERT_TRUE(parts_or.ok()) << parts_or.status().ToString();
  const auto& parts = parts_or.value();
  ASSERT_EQ(parts.size(), 5u);
  uint64_t total = 0;
  for (uint32_t p = 0; p < parts.size(); ++p) {
    auto scan = bm.OpenScan(parts[p]);
    const uint8_t* page = nullptr;
    while (scan.NextPage(&page).ok() && page != nullptr) {
      SlottedPage pg = SlottedPage::Attach(const_cast<uint8_t*>(page));
      EXPECT_TRUE(pg.VerifyChecksum());  // stamped by the join's writer
      total += pg.slot_count();
      for (int s = 0; s < pg.slot_count(); ++s) {
        // Memoized hash codes route every tuple to this partition.
        ASSERT_EQ(pg.GetHashCode(s) % 5, p);
      }
    }
  }
  EXPECT_EQ(total, input.num_tuples());
}

TEST(DiskGraceJoinTest, EmptyRelationsJoinToNothing) {
  Relation empty(Schema::KeyPayload(100));
  BufferManager bm(FastDisks(2));
  DiskGraceJoin join(&bm, 3);
  auto b = join.StoreRelation(empty);
  auto p = join.StoreRelation(empty);
  ASSERT_TRUE(b.ok() && p.ok());
  auto r = join.Join(b.value(), p.value());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().output_tuples, 0u);
}

TEST(DiskGraceJoinTest, MismatchedPartitionListsAreRejected) {
  BufferManager bm(FastDisks(1));
  DiskGraceJoin join(&bm, 3);
  std::vector<BufferManager::FileId> two = {bm.CreateFile(), bm.CreateFile()};
  std::vector<BufferManager::FileId> one = {bm.CreateFile()};
  auto r = join.JoinPartitions(two, one, nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(DiskGraceJoinTest, BudgetedJoinRecursesInsteadOfOverrunningMemory) {
  // Unskewed workload with a budget far below one partition's footprint:
  // every partition must recurse (possibly multiple levels) yet the
  // result must match, and no in-memory build may exceed the budget.
  WorkloadSpec spec;
  spec.num_build_tuples = 6000;
  spec.tuple_size = 100;
  spec.matches_per_build = 1.0;
  JoinWorkload w = GenerateJoinWorkload(spec);

  BufferManager bm(FastDisks(2));
  DiskJoinConfig cfg;
  cfg.num_partitions = 4;
  cfg.memory_budget = 96 * 1024;
  cfg.overflow_fanout = 4;
  cfg.max_recursion_depth = 6;
  DiskGraceJoin join(&bm, cfg);
  auto b = join.StoreRelation(w.build);
  auto p = join.StoreRelation(w.probe);
  ASSERT_TRUE(b.ok() && p.ok());
  auto r = join.Join(b.value(), p.value());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().output_tuples, w.expected_matches);
  EXPECT_GT(r.value().recovery.recursive_splits, 0u);
  EXPECT_GE(r.value().recovery.deepest_recursion, 1u);
  EXPECT_LE(r.value().recovery.max_build_bytes, cfg.memory_budget);
}

}  // namespace
}  // namespace hashjoin
