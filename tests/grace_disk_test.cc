#include <cstring>

#include "gtest/gtest.h"
#include "join/grace_disk.h"
#include "workload/generator.h"

namespace hashjoin {
namespace {

BufferManagerConfig FastDisks(uint32_t n) {
  BufferManagerConfig cfg;
  cfg.num_disks = n;
  cfg.disk.bandwidth_mb_per_s = 20000;
  cfg.disk.request_latency_us = 0;
  return cfg;
}

class DiskGraceJoinTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(DiskGraceJoinTest, EndToEndMatchesExpected) {
  WorkloadSpec spec;
  spec.num_build_tuples = 8000;
  spec.tuple_size = 100;
  spec.matches_per_build = 2.0;
  spec.probe_match_fraction = 0.8;
  JoinWorkload w = GenerateJoinWorkload(spec);

  BufferManager bm(FastDisks(GetParam()));
  DiskGraceJoin join(&bm, 7);
  auto build = join.StoreRelation(w.build);
  auto probe = join.StoreRelation(w.probe);
  ASSERT_TRUE(build.ok()) << build.status().ToString();
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  auto r = join.Join(build.value(), probe.value());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().output_tuples, w.expected_matches);
  EXPECT_EQ(r.value().num_partitions, 7u);
  EXPECT_GT(r.value().partition_phase.elapsed_seconds, 0.0);
  EXPECT_GT(r.value().join_phase.elapsed_seconds, 0.0);
  // A clean, well-balanced run needs no recovery actions at all.
  EXPECT_EQ(r.value().recovery.read_retries, 0u);
  EXPECT_EQ(r.value().recovery.checksum_failures, 0u);
  EXPECT_EQ(r.value().recovery.recursive_splits, 0u);
  EXPECT_EQ(r.value().recovery.chunked_fallbacks, 0u);
}

INSTANTIATE_TEST_SUITE_P(DiskCounts, DiskGraceJoinTest,
                         ::testing::Values(1, 2, 4));

TEST(DiskGraceJoinTest, PartitionFilesPreserveEverything) {
  Relation input = GenerateSourceRelation(5000, 100, 77);
  BufferManager bm(FastDisks(3));
  DiskGraceJoin join(&bm, 5);
  auto file = join.StoreRelation(input);
  ASSERT_TRUE(file.ok());
  auto parts_or = join.Partition(file.value(), nullptr);
  ASSERT_TRUE(parts_or.ok()) << parts_or.status().ToString();
  const auto& parts = parts_or.value();
  ASSERT_EQ(parts.size(), 5u);
  uint64_t total = 0;
  for (uint32_t p = 0; p < parts.size(); ++p) {
    auto scan = bm.OpenScan(parts[p]);
    const uint8_t* page = nullptr;
    while (scan.NextPage(&page).ok() && page != nullptr) {
      SlottedPage pg = SlottedPage::Attach(const_cast<uint8_t*>(page));
      EXPECT_TRUE(pg.VerifyChecksum());  // stamped by the join's writer
      total += pg.slot_count();
      for (int s = 0; s < pg.slot_count(); ++s) {
        // Memoized hash codes route every tuple to this partition.
        ASSERT_EQ(pg.GetHashCode(s) % 5, p);
      }
    }
  }
  EXPECT_EQ(total, input.num_tuples());
}

TEST(DiskGraceJoinTest, EmptyRelationsJoinToNothing) {
  Relation empty(Schema::KeyPayload(100));
  BufferManager bm(FastDisks(2));
  DiskGraceJoin join(&bm, 3);
  auto b = join.StoreRelation(empty);
  auto p = join.StoreRelation(empty);
  ASSERT_TRUE(b.ok() && p.ok());
  auto r = join.Join(b.value(), p.value());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().output_tuples, 0u);
}

TEST(DiskGraceJoinTest, MismatchedPartitionListsAreRejected) {
  BufferManager bm(FastDisks(1));
  DiskGraceJoin join(&bm, 3);
  std::vector<BufferManager::FileId> two = {bm.CreateFile(), bm.CreateFile()};
  std::vector<BufferManager::FileId> one = {bm.CreateFile()};
  auto r = join.JoinPartitions(two, one, nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(DiskGraceJoinTest, BudgetedJoinRecursesInsteadOfOverrunningMemory) {
  // Unskewed workload with a budget far below one partition's footprint:
  // every partition must recurse (possibly multiple levels) yet the
  // result must match, and no in-memory build may exceed the budget.
  WorkloadSpec spec;
  spec.num_build_tuples = 6000;
  spec.tuple_size = 100;
  spec.matches_per_build = 1.0;
  JoinWorkload w = GenerateJoinWorkload(spec);

  BufferManager bm(FastDisks(2));
  DiskJoinConfig cfg;
  cfg.num_partitions = 4;
  cfg.memory_budget = 96 * 1024;
  cfg.overflow_fanout = 4;
  cfg.max_recursion_depth = 6;
  DiskGraceJoin join(&bm, cfg);
  auto b = join.StoreRelation(w.build);
  auto p = join.StoreRelation(w.probe);
  ASSERT_TRUE(b.ok() && p.ok());
  auto r = join.Join(b.value(), p.value());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().output_tuples, w.expected_matches);
  EXPECT_GT(r.value().recovery.recursive_splits, 0u);
  EXPECT_GE(r.value().recovery.deepest_recursion, 1u);
  EXPECT_LE(r.value().recovery.max_build_bytes, cfg.memory_budget);
}

// --- role reversal ---------------------------------------------------

/// `count` tuples per key for each key in [key_base, key_base + keys).
Relation MakeDuplicateRelation(uint32_t key_base, uint32_t keys,
                               uint32_t count, uint32_t tuple_size) {
  Relation rel(Schema::KeyPayload(tuple_size));
  std::vector<uint8_t> buf(tuple_size, 0xA5);
  for (uint32_t k = 0; k < keys; ++k) {
    uint32_t key = key_base + k;
    std::memcpy(buf.data(), &key, sizeof(key));
    for (uint32_t i = 0; i < count; ++i) {
      rel.Append(buf.data(), uint16_t(tuple_size));
    }
  }
  return rel;
}

StatusOr<DiskJoinResult> RunJoin(const DiskJoinConfig& cfg, const Relation& a,
                                 const Relation& b) {
  BufferManager bm(FastDisks(2));
  DiskGraceJoin join(&bm, cfg);
  auto fa = join.StoreRelation(a);
  auto fb = join.StoreRelation(b);
  if (!fa.ok()) return fa.status();
  if (!fb.ok()) return fb.status();
  return join.Join(fa.value(), fb.value());
}

TEST(DiskGraceJoinTest, RoleReversalJoinsTheSmallerSideInMemory) {
  // Build far over the budget, probe comfortably under it: instead of
  // splitting the build, the pair swaps roles and joins in one pass.
  WorkloadSpec spec;
  spec.num_build_tuples = 8000;
  spec.tuple_size = 100;
  spec.matches_per_build = 0.25;  // probe is ~1/4 the build's size
  JoinWorkload w = GenerateJoinWorkload(spec);

  DiskJoinConfig cfg;
  cfg.num_partitions = 4;
  cfg.memory_budget = 128 * 1024;
  auto fwd = RunJoin(cfg, w.build, w.probe);
  ASSERT_TRUE(fwd.ok()) << fwd.status().ToString();
  EXPECT_EQ(fwd.value().output_tuples, w.expected_matches);
  EXPECT_GT(fwd.value().recovery.role_reversals, 0u);
  EXPECT_EQ(fwd.value().recovery.recursive_splits, 0u);
  EXPECT_LE(fwd.value().recovery.max_build_bytes, cfg.memory_budget);

  // Parity: the swapped call sees the small side already in place, so no
  // reversal fires — but the match count is identical (counting key-equal
  // pairs is side-symmetric).
  auto rev = RunJoin(cfg, w.probe, w.build);
  ASSERT_TRUE(rev.ok()) << rev.status().ToString();
  EXPECT_EQ(rev.value().output_tuples, w.expected_matches);
  EXPECT_EQ(rev.value().recovery.role_reversals, 0u);
}

TEST(DiskGraceJoinTest, RoleReversalParityWithDuplicateHeavyKeys) {
  // Duplicates on both sides: 100 keys x 40 copies against 200 keys x 8
  // copies — 100 overlapping keys x (40 * 8) pairs each. The reversal
  // must not change the count even when neither side has unique keys.
  Relation a = MakeDuplicateRelation(0, 100, 40, 64);
  Relation b = MakeDuplicateRelation(0, 200, 8, 64);
  const uint64_t expected = 100ull * 40 * 8;

  DiskJoinConfig cfg;
  cfg.num_partitions = 4;
  cfg.memory_budget = 48 * 1024;
  auto fwd = RunJoin(cfg, a, b);
  auto rev = RunJoin(cfg, b, a);
  ASSERT_TRUE(fwd.ok()) << fwd.status().ToString();
  ASSERT_TRUE(rev.ok()) << rev.status().ToString();
  EXPECT_EQ(fwd.value().output_tuples, expected);
  EXPECT_EQ(rev.value().output_tuples, expected);
}

TEST(DiskGraceJoinTest, EmptyProbeSideShortCircuitsUnderTinyBudget) {
  // One empty side ends the ladder before any rung: no reversal, no
  // split, no fallback — zero matches, zero degradations.
  Relation build = MakeDuplicateRelation(0, 50, 40, 64);
  Relation empty(Schema::KeyPayload(64));

  DiskJoinConfig cfg;
  cfg.num_partitions = 4;
  cfg.memory_budget = 16 * 1024;
  auto r = RunJoin(cfg, build, empty);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().output_tuples, 0u);
  EXPECT_EQ(r.value().recovery.role_reversals, 0u);
  EXPECT_EQ(r.value().recovery.recursive_splits, 0u);
  EXPECT_EQ(r.value().recovery.chunked_fallbacks, 0u);
  EXPECT_EQ(r.value().recovery.bnl_fallbacks, 0u);
}

// --- block nested loop (single giant key) ----------------------------

TEST(DiskGraceJoinTest, SingleGiantKeyFallsBackToBlockNestedLoop) {
  // Every tuple shares one key, both sides over budget: splitting makes
  // no progress (one hash code) and a chunk hash table would be one long
  // chain, so the ladder bottoms out in the block nested loop — which
  // must still count every cross pair exactly once.
  Relation a = MakeDuplicateRelation(7, 1, 3000, 40);
  Relation b = MakeDuplicateRelation(7, 1, 2500, 40);
  const uint64_t expected = 3000ull * 2500;

  DiskJoinConfig cfg;
  cfg.num_partitions = 4;
  cfg.memory_budget = 64 * 1024;
  cfg.max_recursion_depth = 4;
  auto r = RunJoin(cfg, a, b);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().output_tuples, expected);
  EXPECT_GE(r.value().recovery.bnl_fallbacks, 1u);
  // The single-hash shape is detected up front: no wasted split rounds.
  EXPECT_EQ(r.value().recovery.recursive_splits, 0u);
  EXPECT_LE(r.value().recovery.max_build_bytes, cfg.memory_budget);
}

// --- adaptive fan-out ------------------------------------------------

TEST(DiskGraceJoinTest, AdaptiveFanoutSizesPartitionsToTheBudget) {
  // The histogram projection picks a power-of-two fan-out whose largest
  // partition fits the budget — so the join runs without a single
  // recursive split even though the static default (8) is ignored.
  WorkloadSpec spec;
  spec.num_build_tuples = 8000;
  spec.tuple_size = 100;
  JoinWorkload w = GenerateJoinWorkload(spec);

  DiskJoinConfig cfg;
  cfg.adaptive_fanout = true;
  cfg.memory_budget = 300 * 1024;
  auto r = RunJoin(cfg, w.build, w.probe);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().output_tuples, w.expected_matches);
  const uint32_t f = r.value().num_partitions;
  EXPECT_GE(f, 2u);
  EXPECT_LE(f, 64u);
  EXPECT_EQ(f & (f - 1), 0u) << "level-0 fan-out must be a power of two";
  EXPECT_EQ(r.value().recovery.recursive_splits, 0u);
  EXPECT_EQ(r.value().recovery.chunked_fallbacks, 0u);
  EXPECT_LE(r.value().recovery.max_build_bytes, cfg.memory_budget);
}

// --- hybrid residency ------------------------------------------------

TEST(DiskGraceJoinTest, HybridResidencyJoinsResidentPartitionsWithoutSpill) {
  WorkloadSpec spec;
  spec.num_build_tuples = 6000;
  spec.tuple_size = 100;
  JoinWorkload w = GenerateJoinWorkload(spec);

  DiskJoinConfig cfg;
  cfg.num_partitions = 4;
  cfg.hybrid_residency = true;  // unlimited budget: all stay resident
  auto r = RunJoin(cfg, w.build, w.probe);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().output_tuples, w.expected_matches);
  EXPECT_EQ(r.value().recovery.victim_spills, 0u);
  EXPECT_EQ(r.value().recovery.victim_unspills, 0u);
}

TEST(DiskGraceJoinTest, HybridResidencyEvictsVictimsAndStaysCorrect) {
  WorkloadSpec spec;
  spec.num_build_tuples = 8000;
  spec.tuple_size = 100;
  JoinWorkload w = GenerateJoinWorkload(spec);

  DiskJoinConfig cfg;
  cfg.num_partitions = 8;
  cfg.hybrid_residency = true;
  cfg.memory_budget = 160 * 1024;  // below the full build working set
  auto r = RunJoin(cfg, w.build, w.probe);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().output_tuples, w.expected_matches);
  EXPECT_GT(r.value().recovery.victim_spills, 0u);
}

TEST(DiskGraceJoinTest, HybridRevokeHintEvictsAtTheNextPageBoundary) {
  // The budget poll keeps reporting plenty of memory, but partway
  // through the join a "revoke" fires the installed listener with a much
  // smaller size — the eager-hint path. The hint alone must tighten the
  // residency target at the next page boundary, evict victims, and
  // classify them as revoke-forced (the poll never showed the squeeze).
  WorkloadSpec spec;
  spec.num_build_tuples = 6000;
  spec.tuple_size = 100;
  JoinWorkload w = GenerateJoinWorkload(spec);

  std::function<void(uint64_t)> listener;
  uint64_t polls = 0;
  DiskJoinConfig cfg;
  cfg.num_partitions = 4;
  cfg.hybrid_residency = true;
  cfg.install_revoke_listener = [&](std::function<void(uint64_t)> fn) {
    listener = std::move(fn);
  };
  cfg.dynamic_budget = [&]() -> uint64_t {
    if (++polls == 50 && listener) listener(48 * 1024);
    return 1024 * 1024;
  };
  auto r = RunJoin(cfg, w.build, w.probe);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().output_tuples, w.expected_matches);
  EXPECT_GT(r.value().recovery.victim_spills, 0u);
  EXPECT_GT(r.value().recovery.revoke_spills, 0u);
  // The join uninstalled its listener on exit (the closure captured it).
  EXPECT_EQ(listener, nullptr);
}

}  // namespace
}  // namespace hashjoin
