// Tests for the tuning subsystem (src/tune/): the PrefetchTuner
// feedback controller's state machine on simulated counter streams, the
// ChooseParams G/D invariants under randomized inputs (never a 0
// sentinel, never past the measured LFB ceiling), the LFB probe's
// structural guarantees, and the LiveTuning -> KernelParams handoff the
// kernels read at batch boundaries.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "join/join_common.h"
#include "model/cost_model.h"
#include "tune/lfb_probe.h"
#include "tune/prefetch_tuner.h"

namespace hashjoin {
namespace {

// ---------------------------------------------------------------------------
// PrefetchTuner

tune::BatchReading Reading(uint64_t tuples, double cycles_per_tuple,
                           double misses_per_tuple = -1) {
  tune::BatchReading r;
  r.tuples = tuples;
  r.cycles = cycles_per_tuple * double(tuples);
  r.l1d_misses =
      misses_per_tuple >= 0 ? misses_per_tuple * double(tuples) : -1;
  return r;
}

TEST(PrefetchTuner, MonotoneRampWhileCostImproves) {
  tune::TunerConfig cfg;
  cfg.initial_depth = 2;
  cfg.max_depth = 64;
  cfg.warmup_batches = 1;
  tune::PrefetchTuner tuner(cfg);
  EXPECT_EQ(tuner.depth(), 2u);
  EXPECT_EQ(tuner.state(), tune::PrefetchTuner::State::kWarmup);

  // Cost strictly improves with depth: the ramp must follow the growth
  // schedule (2x below 8, then 1.5x: 2,4,8,12,18,27,40,60,64-cap) and
  // only converge at the cap.
  double cost = 100.0;
  std::vector<uint32_t> depths;
  while (tuner.state() != tune::PrefetchTuner::State::kConverged) {
    bool changed = tuner.OnBatch(Reading(1000, cost));
    cost *= 0.8;
    if (changed) depths.push_back(tuner.depth());
    ASSERT_LT(tuner.batches(), 20u) << "ramp failed to terminate";
  }
  const std::vector<uint32_t> want = {4, 8, 12, 18, 27, 40, 60, 64};
  EXPECT_EQ(depths, want);
  EXPECT_EQ(tuner.depth(), 64u);
  EXPECT_TRUE(tuner.converged());
}

TEST(PrefetchTuner, BacksOffToBestDepthOnCostRegression) {
  tune::TunerConfig cfg;
  cfg.initial_depth = 2;
  cfg.warmup_batches = 1;
  tune::PrefetchTuner tuner(cfg);

  // Concave cost curve with minimum at depth 8: warmup@2, then measured
  // costs 4->80, 8->70, 12->95 twice (regression + confirming retry)
  // => back off to 8.
  tuner.OnBatch(Reading(1000, 100));  // warmup baseline, ramp starts
  EXPECT_EQ(tuner.depth(), 4u);
  tuner.OnBatch(Reading(1000, 80));  // depth 4 good -> ramp to 8
  EXPECT_EQ(tuner.depth(), 8u);
  tuner.OnBatch(Reading(1000, 70));  // depth 8 best -> ramp to 12
  EXPECT_EQ(tuner.depth(), 12u);
  // First regressing batch only triggers the retry: depth holds.
  EXPECT_FALSE(tuner.OnBatch(Reading(1000, 95)));
  EXPECT_EQ(tuner.depth(), 12u);
  EXPECT_FALSE(tuner.converged());
  // Retry confirms the regression: back off to the best depth and hold.
  bool changed = tuner.OnBatch(Reading(1000, 95));
  EXPECT_TRUE(changed);
  EXPECT_EQ(tuner.depth(), 8u) << "must return to the best depth seen";
  EXPECT_TRUE(tuner.converged());
}

TEST(PrefetchTuner, BacksOffOnMissRegressionAlone) {
  tune::TunerConfig cfg;
  cfg.initial_depth = 2;
  cfg.warmup_batches = 1;
  cfg.miss_tolerance = 0.25;
  tune::PrefetchTuner tuner(cfg);

  // Cost holds flat but misses/tuple explode at depth 8 — the early
  // symptom of prefetched lines evicted before use. The controller must
  // back off on the miss signal without waiting for cost to collapse.
  tuner.OnBatch(Reading(1000, 100, 1.0));  // warmup baseline
  EXPECT_EQ(tuner.depth(), 4u);
  tuner.OnBatch(Reading(1000, 99, 1.0));  // depth 4 fine
  EXPECT_EQ(tuner.depth(), 8u);
  // Miss spike at depth 8, confirmed by the retry batch.
  EXPECT_FALSE(tuner.OnBatch(Reading(1000, 99, 2.0)));
  EXPECT_EQ(tuner.depth(), 8u);
  bool changed = tuner.OnBatch(Reading(1000, 99, 2.0));
  EXPECT_TRUE(changed);
  EXPECT_EQ(tuner.depth(), 4u);
  EXPECT_TRUE(tuner.converged());
}

TEST(PrefetchTuner, ConvergesOnSimulatedStreamAndTracksTrajectory) {
  tune::TunerConfig cfg;
  cfg.initial_depth = 2;
  cfg.warmup_batches = 1;
  tune::PrefetchTuner tuner(cfg);

  // Synthetic concave cost model with optimum at depth 17: the ramp
  // visits 2,4,8,12,18, sees the regression at 27 (confirmed by the
  // retry), and settles on 18 — the probed depth nearest the optimum.
  auto cost_at = [](uint32_t depth) {
    double d = double(depth);
    return 50.0 + (d - 17.0) * (d - 17.0);
  };
  for (int batch = 0; batch < 12; ++batch) {
    tuner.OnBatch(Reading(1000, cost_at(tuner.depth())));
  }
  EXPECT_TRUE(tuner.converged());
  EXPECT_EQ(tuner.depth(), 18u);
  // The trajectory records one sample per accepted batch, depths match
  // what the tuner held when each batch ran, and G/D are projections.
  ASSERT_EQ(tuner.trajectory().size(), 12u);
  for (const tune::TunerSample& s : tuner.trajectory()) {
    EXPECT_EQ(s.group_size, s.depth);
    EXPECT_GE(s.prefetch_distance, 1u);
    EXPECT_GT(s.cycles_per_tuple, 0.0);
  }
}

TEST(PrefetchTuner, LfbCeilingCapsTheRamp) {
  tune::TunerConfig cfg;
  cfg.initial_depth = 2;
  cfg.max_depth = 64;
  cfg.max_outstanding = 10;  // measured LFB ceiling below max_depth
  cfg.warmup_batches = 1;
  tune::PrefetchTuner tuner(cfg);
  double cost = 100.0;
  for (int batch = 0; batch < 10; ++batch) {
    tuner.OnBatch(Reading(1000, cost));
    cost *= 0.9;  // always improving: the only stop is the cap
    EXPECT_LE(tuner.depth(), 10u);
  }
  EXPECT_TRUE(tuner.converged());
  EXPECT_EQ(tuner.depth(), 10u);
}

TEST(PrefetchTuner, ConvergedDriftShrinksAfterPatienceAndReRamps) {
  tune::TunerConfig cfg;
  cfg.initial_depth = 8;
  cfg.max_depth = 8;  // converges immediately after warmup
  cfg.warmup_batches = 1;
  cfg.converged_patience = 2;
  tune::PrefetchTuner tuner(cfg);
  tuner.OnBatch(Reading(1000, 100));  // warmup -> converged (at cap)
  ASSERT_TRUE(tuner.converged());
  ASSERT_EQ(tuner.depth(), 8u);
  // One drifting batch: tolerated. Two in a row: halve and restart the
  // ramp (the controller must be able to climb back, not only shrink).
  EXPECT_FALSE(tuner.OnBatch(Reading(1000, 200)));
  EXPECT_EQ(tuner.depth(), 8u);
  EXPECT_TRUE(tuner.OnBatch(Reading(1000, 200)));
  EXPECT_EQ(tuner.depth(), 4u);
  EXPECT_EQ(tuner.state(), tune::PrefetchTuner::State::kRamp);
  // The new regime measures well at 4: the ramp probes upward again.
  tuner.OnBatch(Reading(1000, 150));
  EXPECT_EQ(tuner.depth(), 8u);
}

TEST(PrefetchTuner, ConvergedDepthHoldsUnderBatchNoise) {
  // Regression: comparing noisy batches against the minimum-ever cost
  // made ordinary +-10% jitter read as persistent drift, ratcheting a
  // converged depth down to 1 over a long run. The converged baseline
  // is now an EWMA and only the wider drift_tolerance moves the depth.
  tune::TunerConfig cfg;
  cfg.initial_depth = 8;
  cfg.max_depth = 8;
  cfg.warmup_batches = 1;
  tune::PrefetchTuner tuner(cfg);
  tuner.OnBatch(Reading(1000, 100));  // warmup -> converged at 8
  ASSERT_TRUE(tuner.converged());
  const double noisy[] = {92, 110, 95, 108, 90, 112, 97, 109, 93, 111};
  for (int round = 0; round < 5; ++round) {
    for (double cost : noisy) {
      EXPECT_FALSE(tuner.OnBatch(Reading(1000, cost)));
      EXPECT_EQ(tuner.depth(), 8u);
      EXPECT_TRUE(tuner.converged());
    }
  }
}

TEST(PrefetchTuner, IgnoresDegenerateReadings) {
  tune::PrefetchTuner tuner;
  EXPECT_FALSE(tuner.OnBatch(Reading(0, 100)));
  tune::BatchReading bad;
  bad.tuples = 100;
  bad.cycles = 0;
  EXPECT_FALSE(tuner.OnBatch(bad));
  EXPECT_EQ(tuner.batches(), 0u);
  EXPECT_TRUE(tuner.trajectory().empty());
}

TEST(PrefetchTuner, DepthNeverEscapesBounds) {
  // Randomized cost streams: whatever the readings, depth stays within
  // [min_depth, min(max_depth, max_outstanding)] and G/D are never 0.
  std::mt19937 rng(0xC0FFEE);
  std::uniform_real_distribution<double> cost(1.0, 1000.0);
  for (int trial = 0; trial < 50; ++trial) {
    tune::TunerConfig cfg;
    cfg.initial_depth = uint32_t(1 + rng() % 32);
    cfg.min_depth = uint32_t(1 + rng() % 4);
    cfg.max_depth = uint32_t(1 + rng() % 64);
    cfg.max_outstanding =
        rng() % 3 == 0 ? 0 : uint32_t(1 + rng() % 24);
    cfg.stages_k = uint32_t(1 + rng() % 4);
    tune::PrefetchTuner tuner(cfg);
    uint32_t cap = cfg.max_depth;
    if (cfg.max_outstanding > 0) {
      cap = std::min(cap, cfg.max_outstanding);
    }
    cap = std::max(cap, std::max(1u, cfg.min_depth));
    for (int batch = 0; batch < 40; ++batch) {
      tuner.OnBatch(Reading(1000, cost(rng)));
      EXPECT_GE(tuner.depth(), std::max(1u, cfg.min_depth));
      EXPECT_LE(tuner.depth(), cap);
      EXPECT_GE(tuner.group_size(), 1u);
      EXPECT_GE(tuner.prefetch_distance(), 1u);
    }
  }
}

// ---------------------------------------------------------------------------
// ChooseParams property test: G/D invariants under randomized inputs

TEST(ChooseParamsProperty, NeverZeroAndNeverPastLfbCeiling) {
  std::mt19937 rng(0x5EED);
  for (int trial = 0; trial < 2000; ++trial) {
    const uint32_t k = uint32_t(1 + rng() % 4);
    std::vector<uint32_t> stage_costs(k + 1);
    for (uint32_t& c : stage_costs) {
      c = uint32_t(rng() % 64);  // 0 allowed: the infeasible sentinel path
    }
    model::CodeCosts costs{stage_costs};
    model::MachineParams m{uint32_t(1 + rng() % 2000),
                           uint32_t(1 + rng() % 64),
                           rng() % 3 == 0 ? 0 : uint32_t(1 + rng() % 32)};
    const uint32_t fallback_g = uint32_t(1 + rng() % 64);
    const uint32_t fallback_d = uint32_t(1 + rng() % 16);
    model::ParamChoice choice =
        model::ChooseParams(costs, m, fallback_g, fallback_d);

    ASSERT_GE(choice.group_size, 1u)
        << "G=0 sentinel escaped ChooseParams (trial " << trial << ")";
    ASSERT_GE(choice.prefetch_distance, 1u)
        << "D=0 sentinel escaped ChooseParams (trial " << trial << ")";
    if (m.max_outstanding > 0) {
      const uint32_t cap = std::max(1u, m.max_outstanding);
      ASSERT_LE(choice.group_size, cap)
          << "G exceeds the measured LFB ceiling (trial " << trial << ")";
      const uint32_t dcap =
          std::max(1u, cap / std::max(1u, costs.k()));
      ASSERT_LE(choice.prefetch_distance, dcap)
          << "k*D exceeds the measured LFB ceiling (trial " << trial
          << ")";
    }
  }
}

TEST(ChooseParams, LfbClampFlagsSetOnlyWhenClamping) {
  // Feasible theorem output above the ceiling: the clamp must engage and
  // say so.
  model::CodeCosts costs{{2, 2, 2}};
  model::MachineParams m{1000, 4, /*max_outstanding=*/6};
  model::ParamChoice choice = model::ChooseParams(costs, m);
  EXPECT_LE(choice.group_size, 6u);
  EXPECT_TRUE(choice.group_lfb_clamped);
  EXPECT_LE(choice.prefetch_distance, 3u);  // k=2 -> cap 6/2

  // Generous ceiling: no clamp, flags stay false.
  model::MachineParams open{150, 10, /*max_outstanding=*/1024};
  model::ParamChoice unclamped = model::ChooseParams(costs, open);
  EXPECT_FALSE(unclamped.group_lfb_clamped);
  EXPECT_FALSE(unclamped.swp_lfb_clamped);

  // Unknown ceiling (0): clamp disabled entirely.
  model::MachineParams unknown{1000, 4, /*max_outstanding=*/0};
  model::ParamChoice free_choice = model::ChooseParams(costs, unknown);
  EXPECT_FALSE(free_choice.group_lfb_clamped);
  EXPECT_FALSE(free_choice.swp_lfb_clamped);
}

// ---------------------------------------------------------------------------
// LFB probe: structural guarantees on a tiny, fast configuration

TEST(LfbProbe, SmallProbeProducesConsistentCurve) {
  tune::LfbProbeOptions opt;
  opt.buffer_bytes = 8ull << 20;  // big enough to miss, small enough fast
  opt.steps_per_chain = 10'000;
  opt.max_chains = 8;
  opt.repeats = 2;
  tune::LfbProbeResult r = tune::ProbeLfbConcurrency(opt);

  ASSERT_EQ(r.throughput.size(), 8u);
  for (double t : r.throughput) EXPECT_GT(t, 0.0);
  EXPECT_GT(r.single_chain_ns, 0.0);
  // best_throughput is the max of the curve.
  double max_tp = 0;
  for (double t : r.throughput) max_tp = std::max(max_tp, t);
  EXPECT_DOUBLE_EQ(r.best_throughput, max_tp);
  // The knee, when reported, indexes into the probed K range.
  EXPECT_LE(r.max_outstanding, 8u);
  if (r.max_outstanding > 0) {
    EXPECT_GE(r.throughput[r.max_outstanding - 1],
              opt.knee_fraction * max_tp);
  }
}

TEST(LfbProbe, CacheResidentBufferReportsUnknown) {
  tune::LfbProbeOptions opt;
  opt.buffer_bytes = 64 << 10;  // L1/L2-resident: ~no misses to count
  opt.steps_per_chain = 10'000;
  opt.max_chains = 4;
  opt.repeats = 1;
  tune::LfbProbeResult r = tune::ProbeLfbConcurrency(opt);
  // Hits run far below min_single_chain_ns, so the probe must refuse to
  // report a ceiling rather than fabricate one from cache bandwidth.
  EXPECT_EQ(r.max_outstanding, 0u);
}

// ---------------------------------------------------------------------------
// LiveTuning -> KernelParams handoff

TEST(LiveTuning, EffectiveParamsFollowPublishedOverrides) {
  KernelParams params;
  params.group_size = 19;
  params.prefetch_distance = 4;
  // No live channel: statics pass through.
  EXPECT_EQ(params.EffectiveGroupSize(), 19u);
  EXPECT_EQ(params.EffectiveDistance(), 4u);

  LiveTuning live;
  params.live = &live;
  // Attached but unpublished (0,0): still the statics.
  EXPECT_EQ(params.EffectiveGroupSize(), 19u);
  EXPECT_EQ(params.EffectiveDistance(), 4u);

  live.Publish(8, 2);
  EXPECT_EQ(params.EffectiveGroupSize(), 8u);
  EXPECT_EQ(params.EffectiveDistance(), 2u);

  // Publishing 0 withdraws the override (back to statics), never
  // yielding a 0 depth to a kernel.
  live.Publish(0, 0);
  EXPECT_EQ(params.EffectiveGroupSize(), 19u);
  EXPECT_EQ(params.EffectiveDistance(), 4u);
}

TEST(LiveTuning, NeverZeroEvenWithDegenerateStatics) {
  KernelParams params;
  params.group_size = 0;  // misconfigured statics
  params.prefetch_distance = 0;
  EXPECT_EQ(params.EffectiveGroupSize(), 1u);
  EXPECT_EQ(params.EffectiveDistance(), 1u);
}

TEST(LiveTuning, ConcurrentPublisherNeverYieldsZeroOrTornPair) {
  // One publisher cycling through nonzero depths, one reader thread
  // hammering Effective*(). The reader must only ever see depths the
  // publisher wrote (or the statics), never 0.
  LiveTuning live;
  KernelParams params;
  params.group_size = 19;
  params.prefetch_distance = 4;
  params.live = &live;

  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      uint32_t g = params.EffectiveGroupSize();
      uint32_t d = params.EffectiveDistance();
      if (g == 0 || d == 0 || g > 64 || d > 64) {
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  });
  for (int i = 0; i < 20'000; ++i) {
    live.Publish(1 + (i % 32), 1 + (i % 8));
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_FALSE(failed.load());
}

}  // namespace
}  // namespace hashjoin
