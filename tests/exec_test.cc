#include <cstring>
#include <map>
#include <memory>

#include "gtest/gtest.h"
#include "exec/operators.h"
#include "mem/memory_model.h"
#include "util/random.h"
#include "workload/generator.h"

namespace hashjoin {
namespace exec {
namespace {

uint32_t KeyOf(const uint8_t* t) {
  uint32_t k;
  std::memcpy(&k, t, 4);
  return k;
}

// Drains an operator, returning all rows' keys.
std::vector<uint32_t> DrainKeys(Operator* op) {
  std::vector<uint32_t> keys;
  RowBatch batch;
  while (op->Next(&batch)) {
    for (const auto& row : batch.rows) keys.push_back(KeyOf(row.data));
  }
  return keys;
}

TEST(ScanOperatorTest, VisitsEveryRowInBatches) {
  Relation rel(Schema::KeyPayload(16), 512);
  for (uint32_t i = 0; i < 100; ++i) {
    uint8_t t[16] = {};
    std::memcpy(t, &i, 4);
    rel.Append(t, 16);
  }
  ScanOperator scan(&rel, 7);
  ASSERT_TRUE(scan.Open().ok());
  RowBatch batch;
  uint32_t expect = 0;
  while (scan.Next(&batch)) {
    EXPECT_LE(batch.size(), 7u);
    for (const auto& row : batch.rows) {
      EXPECT_EQ(KeyOf(row.data), expect++);
      EXPECT_EQ(row.length, 16);
    }
  }
  EXPECT_EQ(expect, 100u);
}

TEST(ScanOperatorTest, EmptyRelation) {
  Relation rel(Schema::KeyPayload(16));
  ScanOperator scan(&rel);
  ASSERT_TRUE(scan.Open().ok());
  RowBatch batch;
  EXPECT_FALSE(scan.Next(&batch));
}

TEST(FilterOperatorTest, KeepsOnlyMatchingRows) {
  Relation rel(Schema::KeyPayload(16), 512);
  for (uint32_t i = 0; i < 200; ++i) {
    uint8_t t[16] = {};
    std::memcpy(t, &i, 4);
    rel.Append(t, 16);
  }
  FilterOperator filter(
      std::make_unique<ScanOperator>(&rel, 16),
      [](const uint8_t* row, uint16_t) { return KeyOf(row) % 3 == 0; });
  ASSERT_TRUE(filter.Open().ok());
  std::vector<uint32_t> keys = DrainKeys(&filter);
  ASSERT_EQ(keys.size(), 67u);  // 0,3,...,198
  for (uint32_t k : keys) EXPECT_EQ(k % 3, 0u);
}

TEST(FilterOperatorTest, SparseFilterSkipsEmptyBatches) {
  Relation rel(Schema::KeyPayload(16), 512);
  for (uint32_t i = 0; i < 500; ++i) {
    uint8_t t[16] = {};
    std::memcpy(t, &i, 4);
    rel.Append(t, 16);
  }
  FilterOperator filter(
      std::make_unique<ScanOperator>(&rel, 8),
      [](const uint8_t* row, uint16_t) { return KeyOf(row) == 499; });
  ASSERT_TRUE(filter.Open().ok());
  std::vector<uint32_t> keys = DrainKeys(&filter);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], 499u);
}

TEST(ProjectOperatorTest, NarrowsRows) {
  // (key int32, a int64, b int32): project (b, key).
  Schema schema({{"key", AttrType::kInt32, 4},
                 {"a", AttrType::kInt64, 8},
                 {"b", AttrType::kInt32, 4}});
  Relation rel(schema);
  for (uint32_t i = 0; i < 100; ++i) {
    uint8_t t[16] = {};
    int64_t a = int64_t(i) * 10;
    uint32_t b = i + 1000;
    std::memcpy(t, &i, 4);
    std::memcpy(t + 4, &a, 8);
    std::memcpy(t + 12, &b, 4);
    rel.Append(t, sizeof(t));
  }
  ProjectOperator project(std::make_unique<ScanOperator>(&rel, 9),
                          {2u, 0u});
  EXPECT_EQ(project.output_schema().fixed_size(), 8u);
  ASSERT_TRUE(project.Open().ok());
  RowBatch batch;
  uint32_t expect = 0;
  while (project.Next(&batch)) {
    for (const auto& row : batch.rows) {
      ASSERT_EQ(row.length, 8);
      uint32_t b, key;
      std::memcpy(&b, row.data, 4);
      std::memcpy(&key, row.data + 4, 4);
      EXPECT_EQ(b, expect + 1000);
      EXPECT_EQ(key, expect);
      ++expect;
    }
  }
  EXPECT_EQ(expect, 100u);
}

TEST(ProjectOperatorTest, ProjectionFeedsJoin) {
  // Narrow both sides to (key, payload-prefix), then join.
  WorkloadSpec spec;
  spec.num_build_tuples = 1000;
  spec.tuple_size = 64;
  spec.matches_per_build = 1.0;
  JoinWorkload w = GenerateJoinWorkload(spec);
  auto proj_build = std::make_unique<ProjectOperator>(
      std::make_unique<ScanOperator>(&w.build, 19),
      std::vector<uint32_t>{0u});
  auto proj_probe = std::make_unique<ProjectOperator>(
      std::make_unique<ScanOperator>(&w.probe, 19),
      std::vector<uint32_t>{0u});
  HashJoinOperator join(std::move(proj_build), std::move(proj_probe));
  ASSERT_TRUE(join.Open().ok());
  RowBatch batch;
  uint64_t rows = 0;
  while (join.Next(&batch)) rows += batch.size();
  EXPECT_EQ(rows, w.expected_matches);
}

class HashJoinOperatorTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(HashJoinOperatorTest, JoinsAllMatches) {
  WorkloadSpec spec;
  spec.num_build_tuples = 3000;
  spec.tuple_size = 20;
  spec.matches_per_build = 2.0;
  spec.probe_match_fraction = 0.8;
  JoinWorkload w = GenerateJoinWorkload(spec);

  HashJoinOperator join(std::make_unique<ScanOperator>(&w.build, 19),
                        std::make_unique<ScanOperator>(&w.probe, 19),
                        GetParam());
  ASSERT_TRUE(join.Open().ok());
  RowBatch batch;
  uint64_t rows = 0;
  while (join.Next(&batch)) {
    for (const auto& row : batch.rows) {
      ASSERT_EQ(row.length, 40);
      // build key == probe key in the concatenated output
      EXPECT_EQ(KeyOf(row.data), KeyOf(row.data + 20));
      ++rows;
    }
  }
  EXPECT_EQ(rows, w.expected_matches);
  EXPECT_EQ(join.rows_joined(), w.expected_matches);
}

INSTANTIATE_TEST_SUITE_P(Schemes, HashJoinOperatorTest,
                         ::testing::Values(Scheme::kBaseline,
                                           Scheme::kGroup, Scheme::kSwp),
                         [](const auto& info) {
                           return SchemeName(info.param);
                         });

TEST(HashJoinOperatorTest, EmptyBuildSide) {
  Relation empty(Schema::KeyPayload(16));
  Relation probe(Schema::KeyPayload(16));
  uint8_t t[16] = {};
  probe.Append(t, 16);
  HashJoinOperator join(std::make_unique<ScanOperator>(&empty),
                        std::make_unique<ScanOperator>(&probe));
  ASSERT_TRUE(join.Open().ok());
  RowBatch batch;
  EXPECT_FALSE(join.Next(&batch));
}

TEST(AggregateOperatorTest, CountsAndSums) {
  Relation facts(Schema({{"key", AttrType::kInt32, 4},
                         {"value", AttrType::kInt64, 8},
                         {"pad", AttrType::kFixedChar, 4}}));
  Rng rng(61);
  std::map<uint32_t, std::pair<int64_t, int64_t>> oracle;
  for (int i = 0; i < 5000; ++i) {
    uint8_t t[16] = {};
    uint32_t key = uint32_t(rng.NextBounded(100));
    int64_t value = rng.NextInRange(0, 9);
    std::memcpy(t, &key, 4);
    std::memcpy(t + 4, &value, 8);
    facts.Append(t, sizeof(t));
    oracle[key].first += 1;
    oracle[key].second += value;
  }
  AggregateOperator agg(std::make_unique<ScanOperator>(&facts, 32),
                        /*value_offset=*/4);
  ASSERT_TRUE(agg.Open().ok());
  RowBatch batch;
  size_t groups = 0;
  while (agg.Next(&batch)) {
    for (const auto& row : batch.rows) {
      ASSERT_EQ(row.length, 20);
      uint32_t key = KeyOf(row.data);
      int64_t count, sum;
      std::memcpy(&count, row.data + 4, 8);
      std::memcpy(&sum, row.data + 12, 8);
      auto it = oracle.find(key);
      ASSERT_NE(it, oracle.end());
      EXPECT_EQ(count, it->second.first) << key;
      EXPECT_EQ(sum, it->second.second) << key;
      ++groups;
    }
  }
  EXPECT_EQ(groups, oracle.size());
}

TEST(PipelineTest, ScanFilterJoinAggregate) {
  // SELECT o.key, COUNT(*), SUM(...) over (filtered orders ⋈ lineitems).
  WorkloadSpec spec;
  spec.num_build_tuples = 2000;
  spec.tuple_size = 20;
  spec.matches_per_build = 3.0;
  JoinWorkload w = GenerateJoinWorkload(spec);

  auto scan_build = std::make_unique<ScanOperator>(&w.build, 19);
  auto filter = std::make_unique<FilterOperator>(
      std::move(scan_build),
      [](const uint8_t* row, uint16_t) { return KeyOf(row) % 2 == 0; });
  auto scan_probe = std::make_unique<ScanOperator>(&w.probe, 19);
  auto join = std::make_unique<HashJoinOperator>(std::move(filter),
                                                 std::move(scan_probe));
  AggregateOperator agg(std::move(join), /*value_offset=*/4);
  ASSERT_TRUE(agg.Open().ok());

  RowBatch batch;
  uint64_t total_count = 0;
  size_t groups = 0;
  while (agg.Next(&batch)) {
    for (const auto& row : batch.rows) {
      int64_t count;
      std::memcpy(&count, row.data + 4, 8);
      EXPECT_EQ(KeyOf(row.data) % 2, 0u);  // filter applied pre-join
      EXPECT_EQ(count, 3);                 // 3 lineitems per order
      total_count += uint64_t(count);
      ++groups;
    }
  }
  EXPECT_EQ(groups, 1000u);         // even keys 2..2000
  EXPECT_EQ(total_count, 3000u);
}

TEST(GraceJoinOperatorTest, JoinsWithConfiguredThreads) {
  WorkloadSpec spec;
  spec.num_build_tuples = 5000;
  spec.tuple_size = 20;
  spec.matches_per_build = 2.0;
  JoinWorkload w = GenerateJoinWorkload(spec);

  for (uint32_t threads : {1u, 4u}) {
    GraceConfig config;
    config.forced_num_partitions = 4;
    config.num_threads = threads;
    GraceJoinOperator join(std::make_unique<ScanOperator>(&w.build, 32),
                           std::make_unique<ScanOperator>(&w.probe, 32),
                           config);
    ASSERT_TRUE(join.Open().ok());
    uint64_t rows = 0;
    RowBatch batch;
    while (join.Next(&batch)) {
      for (const auto& row : batch.rows) {
        ASSERT_EQ(row.length, 40u);  // build columns then probe columns
        EXPECT_EQ(KeyOf(row.data), KeyOf(row.data + 20));
        ++rows;
      }
    }
    EXPECT_EQ(rows, w.expected_matches) << "threads=" << threads;
    EXPECT_EQ(join.rows_joined(), w.expected_matches);
    EXPECT_EQ(join.join_result().num_partitions, 4u);
  }
}

}  // namespace
}  // namespace exec
}  // namespace hashjoin
