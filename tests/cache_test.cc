// Tests for the cross-query hash-table cache: hit/miss/invalidate
// correctness (cached-path output byte-identical to the uncached run for
// every execution scheme), pin-count discipline under concurrent probes,
// revoke-storm eviction ordering, and the broker's cache-first
// revocation class. Runs under TSAN via the `threaded` label.

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "cache/hash_table_cache.h"
#include "gtest/gtest.h"
#include "hash/hash_table.h"
#include "join/grace.h"
#include "mem/memory_model.h"
#include "sched/join_scheduler.h"
#include "sched/memory_broker.h"
#include "workload/generator.h"
#include "workload/replay.h"

namespace hashjoin {
namespace {

/// Byte-level equality of two relations: same tuple stream, same bytes.
bool RelationsIdentical(const Relation& a, const Relation& b) {
  if (a.num_tuples() != b.num_tuples()) return false;
  TupleCursor ca(a), cb(b);
  const SlottedPage::Slot* sa;
  const SlottedPage::Slot* sb;
  const uint8_t* ta;
  const uint8_t* tb;
  while (ca.Next(&sa, &ta)) {
    if (!cb.Next(&sb, &tb)) return false;
    if (sa->length != sb->length) return false;
    if (std::memcmp(ta, tb, sa->length) != 0) return false;
  }
  return !cb.Next(&sb, &tb);
}

JoinWorkload SmallWorkload(uint64_t seed, uint64_t build_tuples = 2000) {
  WorkloadSpec spec;
  spec.tuple_size = 32;
  spec.num_build_tuples = build_tuples;
  spec.matches_per_build = 1.0;
  spec.seed = seed;
  return GenerateJoinWorkload(spec);
}

/// Builds a standalone cached entry from `tuples` synthetic tuples so
/// eviction tests control sizes and benefits exactly.
bool OfferEntry(cache::HashTableCache* c, const cache::CacheKey& key,
                uint64_t tuples, double rebuild_cycles) {
  JoinWorkload w = SmallWorkload(key.relation_id * 131 + key.version,
                                 tuples);
  auto build = std::make_shared<Relation>(std::move(w.build));
  auto ht = std::make_unique<HashTable>(
      ChooseBucketCount(build->num_tuples(), 1));
  RealMemory mm;
  KernelParams params;
  BuildPartition(mm, Scheme::kBaseline, *build, ht.get(), params);
  return c->Offer(key, std::move(build), std::move(ht), rebuild_cycles);
}

TEST(SchemaFingerprintTest, DistinguishesLayouts) {
  JoinWorkload a = SmallWorkload(1);
  WorkloadSpec wide;
  wide.tuple_size = 64;
  wide.num_build_tuples = 100;
  JoinWorkload b = GenerateJoinWorkload(wide);
  EXPECT_EQ(cache::SchemaFingerprint(a.build.schema()),
            cache::SchemaFingerprint(a.probe.schema()));
  EXPECT_NE(cache::SchemaFingerprint(a.build.schema()),
            cache::SchemaFingerprint(b.build.schema()));
}

TEST(HashTableCacheTest, HitMissInvalidateByteIdenticalAllSchemes) {
  for (Scheme scheme : AllSchemes()) {
    SCOPED_TRACE(SchemeName(scheme));
    JoinWorkload w = SmallWorkload(7);
    cache::HashTableCache cache(64ull << 20);
    cache::CacheKey key{1, 1, cache::SchemaFingerprint(w.build.schema())};

    GraceConfig plain;
    plain.join_scheme = scheme;
    plain.forced_num_partitions = 1;

    GraceConfig cached = plain;
    cached.table_cache = &cache;
    cached.cache_key = key;

    RealMemory mm;
    Relation out_ref(ConcatSchema(w.build.schema(), w.probe.schema()));
    JoinResult ref = GraceHashJoin(mm, w.build, w.probe, plain, &out_ref);
    EXPECT_EQ(ref.output_tuples, w.expected_matches);
    EXPECT_FALSE(ref.cache_hit);

    // Miss populates the cache; output must match the uncached run.
    Relation out_miss(ConcatSchema(w.build.schema(), w.probe.schema()));
    JoinResult miss = GraceHashJoin(mm, w.build, w.probe, cached, &out_miss);
    EXPECT_EQ(miss.output_tuples, w.expected_matches);
    EXPECT_FALSE(miss.cache_hit);
    EXPECT_TRUE(RelationsIdentical(out_ref, out_miss));
    EXPECT_EQ(cache.stats().inserts, 1u);

    // Hit skips the build; output still byte-identical.
    Relation out_hit(ConcatSchema(w.build.schema(), w.probe.schema()));
    JoinResult hit = GraceHashJoin(mm, w.build, w.probe, cached, &out_hit);
    EXPECT_EQ(hit.output_tuples, w.expected_matches);
    EXPECT_TRUE(hit.cache_hit);
    EXPECT_TRUE(RelationsIdentical(out_ref, out_hit));
    EXPECT_EQ(cache.stats().hits, 1u);

    // Invalidate forces the next run back through the build.
    EXPECT_EQ(cache.Invalidate(key.relation_id), 1u);
    Relation out_inv(ConcatSchema(w.build.schema(), w.probe.schema()));
    JoinResult inv = GraceHashJoin(mm, w.build, w.probe, cached, &out_inv);
    EXPECT_FALSE(inv.cache_hit);
    EXPECT_TRUE(RelationsIdentical(out_ref, out_inv));
  }
}

TEST(HashTableCacheTest, OfferRejectsDuplicatesAndOversize) {
  cache::HashTableCache cache(1ull << 20);
  cache::CacheKey key{3, 1, 0};
  ASSERT_TRUE(OfferEntry(&cache, key, 500, 1000));
  EXPECT_FALSE(OfferEntry(&cache, key, 500, 1000));  // duplicate
  cache::CacheKey big{4, 1, 0};
  EXPECT_FALSE(OfferEntry(&cache, big, 200000, 1000));  // cannot ever fit
  EXPECT_EQ(cache.stats().rejected_inserts, 2u);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(HashTableCacheTest, EvictionOrderIsLowestBenefitFirst) {
  // Three same-sized entries with increasing rebuild benefit; shrinking
  // to one entry's worth must evict the two cheapest, keeping C.
  cache::HashTableCache cache(1ull << 30);
  cache::CacheKey a{1, 1, 0}, b{2, 1, 0}, c{3, 1, 0};
  ASSERT_TRUE(OfferEntry(&cache, a, 1000, 1e3));
  ASSERT_TRUE(OfferEntry(&cache, b, 1000, 1e6));
  ASSERT_TRUE(OfferEntry(&cache, c, 1000, 1e9));
  const uint64_t occupancy = cache.stats().charged_bytes;
  cache.OnRevoke(occupancy / 3 + 1);
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_GT(cache.stats().revoked_bytes, 0u);
  EXPECT_FALSE(cache.Acquire(a));
  EXPECT_FALSE(cache.Acquire(b));
  EXPECT_TRUE(cache.Acquire(c));
}

TEST(HashTableCacheTest, RevokeDefersEvictionOfPinnedEntries) {
  cache::HashTableCache cache(1ull << 30);
  cache::CacheKey key{9, 1, 0};
  ASSERT_TRUE(OfferEntry(&cache, key, 1000, 1e6));
  const uint64_t charged = cache.stats().charged_bytes;
  {
    cache::PinnedTable pin = cache.Acquire(key);
    ASSERT_TRUE(pin);
    // Revoke to zero: the pinned entry cannot go yet.
    cache.OnRevoke(0);
    EXPECT_EQ(cache.stats().entries, 1u);
    EXPECT_EQ(cache.stats().revoked_bytes, 0u);
    // Still probeable while pinned (reader finishes against old table).
    EXPECT_GT(pin.table().num_tuples(), 0u);
  }
  // Last unpin completes the deferred shrink and counts the bytes.
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().revoked_bytes, charged);
}

TEST(HashTableCacheTest, RevokeRacingUnpinStillCompletesDeferredShrink) {
  // Regression: Unpin samples capacity via the closure BEFORE taking
  // the cache lock. A revoke landing in that window must not be lost —
  // the last Unpin has to finish the revoke's deferred shrink, not
  // compare against the stale pre-revoke budget and falsely clear the
  // pending flag. The closure fires OnRevoke(0) reentrantly on its
  // first armed call, which lands the revoke exactly inside Unpin's
  // sample window (the closure runs with no cache lock held).
  cache::HashTableCache cache(1ull << 30);
  cache::CacheKey key{31, 1, 0};
  ASSERT_TRUE(OfferEntry(&cache, key, 1000, 1e6));
  const uint64_t charged = cache.stats().charged_bytes;
  std::atomic<bool> armed{false};
  cache.SetCapacityFn([&] {
    if (armed.exchange(false)) cache.OnRevoke(0);
    return uint64_t(1) << 30;  // stale pre-revoke budget
  });
  {
    cache::PinnedTable pin = cache.Acquire(key);
    ASSERT_TRUE(pin);
    armed = true;
    // pin's destructor runs Unpin: the revoke fires mid-sample, defers
    // (the entry is still pinned), and the clamp makes this same Unpin
    // finish the shrink once the pin drops.
  }
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().revoked_bytes, charged);
  EXPECT_EQ(cache.stats().charged_bytes, 0u);
}

TEST(HashTableCacheTest, RevokeRacingOfferIsNotAdmittedOverBudget) {
  // Same window in Offer: an insert admitted against a pre-revoke
  // sample would sit above the revoked grant with no pending flag left
  // to correct it. The clamp must reject it.
  cache::HashTableCache cache(1ull << 30);
  std::atomic<bool> armed{false};
  cache.SetCapacityFn([&] {
    if (armed.exchange(false)) cache.OnRevoke(1);
    return uint64_t(1) << 30;
  });
  armed = true;
  cache::CacheKey key{32, 1, 0};
  EXPECT_FALSE(OfferEntry(&cache, key, 1000, 1e6));
  EXPECT_EQ(cache.stats().charged_bytes, 0u);
  EXPECT_EQ(cache.stats().rejected_inserts, 1u);
  // After the revoke settles, the (re-grown) live budget applies again.
  EXPECT_TRUE(OfferEntry(&cache, key, 1000, 1e6));
}

TEST(HashTableCacheTest, PinDisciplineUnderConcurrentProbesAndUpdates) {
  JoinWorkload w = SmallWorkload(21);
  cache::HashTableCache cache(256ull << 20);
  const uint64_t relation_id = 5;
  const uint64_t fp = cache::SchemaFingerprint(w.build.schema());
  std::atomic<uint64_t> version{1};
  ASSERT_TRUE(OfferEntry(&cache, {relation_id, 1, fp}, 1000, 1e6));

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> hits{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      KernelParams params;
      while (!stop.load(std::memory_order_acquire)) {
        cache::CacheKey key{relation_id,
                            version.load(std::memory_order_acquire), fp};
        cache::PinnedTable pin = cache.Acquire(key);
        if (!pin) continue;
        // Probe the pinned table; the pin keeps the entry (and its
        // build pages) alive even if an invalidation lands mid-probe.
        RealMemory mm;
        Relation out(ConcatSchema(pin.build().schema(), w.probe.schema()));
        ProbePartition(mm, Scheme::kGroup, w.probe, pin.table(),
                       pin.build().schema().fixed_size(), params, &out);
        hits.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Updater: invalidate + republish a fresh version under the readers.
  for (int round = 0; round < 20; ++round) {
    const uint64_t v = version.load(std::memory_order_relaxed) + 1;
    cache.Invalidate(relation_id);
    ASSERT_TRUE(OfferEntry(&cache, {relation_id, v, fp}, 1000, 1e6));
    version.store(v, std::memory_order_release);
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  cache::CacheStats cs = cache.stats();
  EXPECT_EQ(cs.pinned_entries, 0u);   // every pin released
  EXPECT_EQ(cs.entries, 1u);          // only the latest version remains
  EXPECT_GE(cs.invalidations, 20u);
  EXPECT_TRUE(cache.Acquire(
      {relation_id, version.load(std::memory_order_relaxed), fp}));
}

TEST(HashTableCacheTest, DestructorChecksCleanShutdownAfterChurn) {
  // Revoke storm against a live cache: concurrent Offer/Acquire/OnRevoke
  // from several threads, then a normal destruction — TSAN validates the
  // locking, the dtor validates no pin leaked.
  cache::HashTableCache cache(8ull << 20);
  std::atomic<bool> stop{false};
  std::thread revoker([&] {
    uint64_t cap = 8ull << 20;
    while (!stop.load(std::memory_order_acquire)) {
      cap = cap > (1ull << 18) ? cap / 2 : 8ull << 20;
      cache.OnRevoke(cap);
    }
  });
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&, t] {
      for (uint64_t i = 0; i < 30; ++i) {
        cache::CacheKey key{uint64_t(t) * 1000 + i, 1, 0};
        OfferEntry(&cache, key, 300, double(1 + i));
        cache::PinnedTable pin = cache.Acquire(key);
        if (pin) {
          EXPECT_GT(pin.table().num_tuples(), 0u);
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  stop.store(true, std::memory_order_release);
  revoker.join();
  EXPECT_EQ(cache.stats().pinned_entries, 0u);
}

TEST(MemoryBrokerTest, CacheClassRevokedBeforeNormalGrants) {
  MemoryBroker broker(1000);
  // The cache takes (almost) everything as revocable kCache memory.
  auto cache_grant =
      broker.Acquire(100, 900, /*timeout_seconds=*/0, GrantClass::kCache);
  ASSERT_TRUE(cache_grant.ok());
  EXPECT_EQ(cache_grant.value()->bytes(), 900u);
  // A normal admission that needs revocation must drain the cache grant,
  // not touch other normal grants.
  auto normal_a = broker.Acquire(300, 300, 0);
  ASSERT_TRUE(normal_a.ok());
  auto normal_b = broker.Acquire(500, 500, 0);
  ASSERT_TRUE(normal_b.ok());
  // 100 came from free budget, 200 + 500 were cut from the cache grant;
  // the normal grant was never touched.
  EXPECT_EQ(cache_grant.value()->bytes(), 200u);
  EXPECT_EQ(normal_a.value()->bytes(), 300u);
  EXPECT_EQ(broker.cache_revoked_bytes(), 700u);
  EXPECT_EQ(broker.normal_revokes_with_cache_surplus(), 0u);

  // Released bytes re-grow normal grants before the cache class; with
  // normal_a already at its desired size, the cache gets them all.
  normal_b.value()->Release();
  EXPECT_EQ(cache_grant.value()->bytes(), 700u);
}

TEST(MemoryBrokerTest, NormalSurplusStillRevocableAfterCacheDrained) {
  MemoryBroker broker(1000);
  auto cache_grant =
      broker.Acquire(100, 200, /*timeout_seconds=*/0, GrantClass::kCache);
  ASSERT_TRUE(cache_grant.ok());
  auto normal_a = broker.Acquire(200, 800, 0);
  ASSERT_TRUE(normal_a.ok());
  // Needs 400: cache surplus (100) goes first, then normal surplus.
  auto normal_b = broker.Acquire(400, 400, 0);
  ASSERT_TRUE(normal_b.ok());
  EXPECT_EQ(cache_grant.value()->bytes(), 100u);
  EXPECT_LT(normal_a.value()->bytes(), 800u);
  EXPECT_EQ(broker.normal_revokes_with_cache_surplus(), 0u);
}

TEST(JoinSchedulerCacheTest, CacheGrantWiredAndReused) {
  JoinWorkload w = SmallWorkload(33, 4000);
  SchedulerConfig cfg;
  cfg.max_concurrent = 1;  // deterministic: second query sees the first's
  cfg.pool_threads = 2;
  cfg.memory_budget = 64ull << 20;
  cfg.cache_bytes = 32ull << 20;
  JoinScheduler sched(cfg);
  ASSERT_NE(sched.table_cache(), nullptr);

  cache::CacheKey key{1, 1, cache::SchemaFingerprint(w.build.schema())};
  std::atomic<int> hit_count{0};
  for (int q = 0; q < 3; ++q) {
    JoinRequest req;
    req.name = "q" + std::to_string(q);
    req.min_grant_bytes = 8ull << 20;
    req.desired_grant_bytes = 8ull << 20;
    req.body = [&w, key, &hit_count](QueryContext& ctx)
        -> StatusOr<uint64_t> {
      RealMemory mm;
      GraceConfig gcfg;
      gcfg.forced_num_partitions = 1;
      gcfg.table_cache = ctx.table_cache();
      gcfg.cache_key = key;
      JoinResult r = GraceHashJoin(mm, w.build, w.probe, gcfg, nullptr);
      if (r.cache_hit) hit_count.fetch_add(1, std::memory_order_relaxed);
      return r.output_tuples;
    };
    ASSERT_TRUE(sched.Submit(std::move(req)).ok());
  }
  ServiceStats stats = sched.Drain();
  EXPECT_EQ(stats.completed, 3u);
  for (const QueryStats& qs : stats.queries) {
    EXPECT_TRUE(qs.status.ok());
    EXPECT_EQ(qs.output_tuples, w.expected_matches);
  }
  EXPECT_EQ(hit_count.load(), 2);  // first misses, the rest reuse
}

TEST(ReplayTest, TraceIsDeterministicAndUpdatesBumpVersions) {
  ReplaySpec spec;
  spec.num_tables = 4;
  spec.build_tuples_per_table = 300;
  spec.probe_tuples_per_query = 100;
  spec.num_queries = 50;
  spec.update_rate = 0.3;
  std::vector<ReplayOp> t1 = GenerateReplayTrace(spec);
  std::vector<ReplayOp> t2 = GenerateReplayTrace(spec);
  ASSERT_EQ(t1.size(), t2.size());
  bool any_update = false;
  for (size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].table, t2[i].table);
    EXPECT_EQ(t1[i].is_update, t2[i].is_update);
    EXPECT_LT(t1[i].table, spec.num_tables);
    any_update |= t1[i].is_update;
  }
  EXPECT_TRUE(any_update);

  ReplayCatalog catalog(spec);
  const uint64_t v0 = catalog.version(0);
  std::shared_ptr<const Relation> old_build = catalog.build(0);
  catalog.Update(0);
  EXPECT_EQ(catalog.version(0), v0 + 1);
  EXPECT_NE(catalog.build(0).get(), old_build.get());
  // Old snapshot stays valid for in-flight readers.
  EXPECT_EQ(old_build->num_tuples(), spec.build_tuples_per_table);
  EXPECT_EQ(catalog.expected_matches(0), spec.probe_tuples_per_query);
}

TEST(RebuildCostTest, EstimateGrowsWithTuples) {
  const double small = cache::HashTableCache::EstimateRebuildCycles(1000);
  const double big = cache::HashTableCache::EstimateRebuildCycles(100000);
  EXPECT_GT(small, 0);
  EXPECT_GT(big, small);
}

}  // namespace
}  // namespace hashjoin
