// Tests for the extension features: chained-bucket contrast table,
// hybrid hash join, and software-pipelined aggregation.

#include <cstring>
#include <map>

#include "gtest/gtest.h"
#include "join/aggregate_kernels.h"
#include "join/chained_kernels.h"
#include "join/hybrid.h"
#include "mem/memory_model.h"
#include "util/bitops.h"
#include "util/random.h"
#include "workload/generator.h"

namespace hashjoin {
namespace {

uint32_t KeyOf(const uint8_t* t) {
  uint32_t k;
  std::memcpy(&k, t, 4);
  return k;
}

// ---------- chained hash table ----------

TEST(ChainedHashTableTest, InsertAndProbe) {
  ChainedHashTable ht(101);
  std::vector<std::vector<uint8_t>> tuples;
  for (uint32_t k = 0; k < 1000; ++k) {
    tuples.push_back(std::vector<uint8_t>(16, 0));
    std::memcpy(tuples.back().data(), &k, 4);
    ht.Insert(HashKey32(k), tuples.back().data());
  }
  EXPECT_EQ(ht.num_tuples(), 1000u);
  EXPECT_EQ(ht.CountTuplesSlow(), 1000u);
  for (uint32_t k = 0; k < 1000; ++k) {
    int exact = 0;
    ht.Probe(HashKey32(k), [&](const uint8_t* t) {
      if (KeyOf(t) == k) ++exact;
    });
    ASSERT_EQ(exact, 1) << k;
  }
}

TEST(ChainedHashTableTest, DuplicatesChainInOneBucket) {
  ChainedHashTable ht(1);
  std::vector<uint8_t> t(16, 0);
  for (int i = 0; i < 50; ++i) ht.Insert(7, t.data());
  int found = 0;
  ht.Probe(7, [&](const uint8_t*) { ++found; });
  EXPECT_EQ(found, 50);
}

class ChainedProbeTest : public ::testing::TestWithParam<ChainedPrefetch> {};

TEST_P(ChainedProbeTest, JoinResultMatchesExpected) {
  WorkloadSpec spec;
  spec.num_build_tuples = 4000;
  spec.tuple_size = 20;
  spec.matches_per_build = 2.0;
  spec.probe_match_fraction = 0.8;
  JoinWorkload w = GenerateJoinWorkload(spec);
  RealMemory mm;
  ChainedHashTable ht(ChooseBucketCount(w.build.num_tuples(), 31));
  BuildChained(mm, w.build, &ht);
  Relation out(ConcatSchema(w.build.schema(), w.probe.schema()));
  uint64_t n =
      ProbeChained(mm, w.probe, ht, spec.tuple_size, GetParam(), &out);
  EXPECT_EQ(n, w.expected_matches);
  EXPECT_EQ(out.num_tuples(), w.expected_matches);
  out.ForEachTuple([&](const uint8_t* t, uint16_t len, uint32_t) {
    ASSERT_EQ(len, 2 * spec.tuple_size);
    ASSERT_EQ(KeyOf(t), KeyOf(t + spec.tuple_size));
  });
}

INSTANTIATE_TEST_SUITE_P(Modes, ChainedProbeTest,
                         ::testing::Values(ChainedPrefetch::kNone,
                                           ChainedPrefetch::kNextCell),
                         [](const auto& info) {
                           return info.param == ChainedPrefetch::kNone
                                      ? "none"
                                      : "naive";
                         });

TEST(ChainedProbeTest, NaivePrefetchGainsAlmostNothingInSimulator) {
  // The §3 claim, asserted: within-visit prefetching of the next chain
  // cell saves at most a few percent.
  WorkloadSpec spec;
  spec.num_build_tuples = 20000;
  spec.tuple_size = 20;
  JoinWorkload w = GenerateJoinWorkload(spec);
  auto run = [&](ChainedPrefetch mode) {
    sim::MemorySim simulator{sim::SimConfig{}};
    SimMemory mm(&simulator);
    ChainedHashTable ht(ChooseBucketCount(w.build.num_tuples(), 31));
    BuildChained(mm, w.build, &ht);
    Relation out(ConcatSchema(w.build.schema(), w.probe.schema()));
    ProbeChained(mm, w.probe, ht, spec.tuple_size, mode, &out);
    return simulator.stats().TotalCycles();
  };
  uint64_t none = run(ChainedPrefetch::kNone);
  uint64_t naive = run(ChainedPrefetch::kNextCell);
  EXPECT_LT(none, naive * 110 / 100);  // within 10% of each other
  EXPECT_GT(none, naive * 90 / 100);
}

// ---------- hybrid hash join ----------

class HybridJoinTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(HybridJoinTest, EndToEndCountsMatch) {
  WorkloadSpec spec;
  spec.num_build_tuples = 20000;
  spec.tuple_size = 20;
  spec.matches_per_build = 2.0;
  spec.probe_match_fraction = 0.75;
  JoinWorkload w = GenerateJoinWorkload(spec);

  GraceConfig config;
  config.memory_budget = 150 * 1024;
  config.join_scheme = GetParam();
  config.page_size = 2048;
  config.join_params.group_size = 8;
  config.join_params.prefetch_distance = 2;

  RealMemory mm;
  Relation out(ConcatSchema(w.build.schema(), w.probe.schema()), 2048);
  JoinResult r = HybridHashJoin(mm, w.build, w.probe, config, &out);
  EXPECT_EQ(r.output_tuples, w.expected_matches);
  EXPECT_EQ(out.num_tuples(), w.expected_matches);
  EXPECT_GE(r.num_partitions, 2u);
  out.ForEachTuple([&](const uint8_t* t, uint16_t len, uint32_t) {
    ASSERT_EQ(len, 2 * spec.tuple_size);
    ASSERT_EQ(KeyOf(t), KeyOf(t + spec.tuple_size));
  });
}

TEST_P(HybridJoinTest, ResultAgreesWithGrace) {
  WorkloadSpec spec;
  spec.num_build_tuples = 8000;
  spec.tuple_size = 16;
  spec.matches_per_build = 1.5;
  JoinWorkload w = GenerateJoinWorkload(spec);
  GraceConfig config;
  config.memory_budget = 64 * 1024;
  config.join_scheme = GetParam();
  config.partition_scheme = GetParam();
  config.page_size = 2048;
  RealMemory mm;
  JoinResult hybrid = HybridHashJoin(mm, w.build, w.probe, config, nullptr);
  JoinResult grace = GraceHashJoin(mm, w.build, w.probe, config, nullptr);
  EXPECT_EQ(hybrid.output_tuples, grace.output_tuples);
  EXPECT_EQ(hybrid.output_tuples, w.expected_matches);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, HybridJoinTest,
                         ::testing::Values(Scheme::kBaseline, Scheme::kSimple,
                                           Scheme::kGroup, Scheme::kSwp),
                         [](const auto& info) {
                           return SchemeName(info.param);
                         });

TEST(HybridPartitionCountTest, ClampsToTwoWhenEverythingFits) {
  GraceConfig config;
  config.memory_budget = 1ull << 30;  // whole build fits in memory
  // Hybrid still needs partition 0 plus at least one spilled partition.
  EXPECT_EQ(HybridPartitionCount(1000, 100 * 1000, config), 2u);
  // forced_num_partitions is honored, but also clamped.
  config.forced_num_partitions = 1;
  EXPECT_EQ(HybridPartitionCount(1000, 100 * 1000, config), 2u);
  config.forced_num_partitions = 9;
  EXPECT_EQ(HybridPartitionCount(1000, 100 * 1000, config), 9u);
}

TEST(HybridPartitionCountTest, MatchesBudgetSizingWhenSpilling) {
  GraceConfig config;
  config.memory_budget = 64 * 1024;
  uint32_t n = HybridPartitionCount(50000, 50000 * 20, config);
  EXPECT_EQ(n, ComputeNumPartitions(50000, 50000 * 20, config.memory_budget));
  EXPECT_GE(n, 2u);
}

TEST(HybridPartitionCountTest, SinglePartitionAllowedWhenEverythingFits) {
  // A recursive level whose whole input fits the grant may finish in
  // memory: allow_single_partition lifts the >= 2 clamp so nothing is
  // gratuitously spilled. When the input does NOT fit, the flag changes
  // nothing — sizing still rules.
  GraceConfig config;
  config.memory_budget = 1ull << 30;
  EXPECT_EQ(HybridPartitionCount(1000, 100 * 1000, config,
                                 /*allow_single_partition=*/true),
            1u);
  // The default (no flag) keeps the historical clamp.
  EXPECT_EQ(HybridPartitionCount(1000, 100 * 1000, config), 2u);
  config.memory_budget = 64 * 1024;
  EXPECT_EQ(HybridPartitionCount(50000, 50000 * 20, config,
                                 /*allow_single_partition=*/true),
            ComputeNumPartitions(50000, 50000 * 20, config.memory_budget));
}

TEST(HybridJoinTest, SinglePartitionJoinRunsFullyInMemory) {
  // config.hybrid_allow_single_partition + a budget that covers the
  // whole build: num_partitions == 1, every tuple routes through the
  // in-place partition 0, and the spilled-partition loops are empty —
  // with the exact same match output.
  WorkloadSpec spec;
  spec.num_build_tuples = 5000;
  spec.tuple_size = 20;
  spec.matches_per_build = 2.0;
  JoinWorkload w = GenerateJoinWorkload(spec);

  GraceConfig config;
  config.memory_budget = 16ull << 20;
  config.hybrid_allow_single_partition = true;
  config.page_size = 2048;
  RealMemory mm;
  Relation out(ConcatSchema(w.build.schema(), w.probe.schema()), 2048);
  JoinResult r = HybridHashJoin(mm, w.build, w.probe, config, &out);
  EXPECT_EQ(r.num_partitions, 1u);
  EXPECT_EQ(r.output_tuples, w.expected_matches);
  EXPECT_EQ(out.num_tuples(), w.expected_matches);

  // Same config without the flag: identical output through two
  // partitions — the flag is a memory/I/O decision, never a result one.
  config.hybrid_allow_single_partition = false;
  JoinResult spilled = HybridHashJoin(mm, w.build, w.probe, config, nullptr);
  EXPECT_EQ(spilled.num_partitions, 2u);
  EXPECT_EQ(spilled.output_tuples, r.output_tuples);
}

// The budget-forced clamp path end to end: a workload whose sizing alone
// would say "1 partition" must still produce correct results through the
// partition-0-in-place + spill structure.
TEST(HybridJoinTest, ClampedTinyWorkloadStillJoinsCorrectly) {
  WorkloadSpec spec;
  spec.num_build_tuples = 500;
  spec.tuple_size = 20;
  spec.matches_per_build = 2.0;
  JoinWorkload w = GenerateJoinWorkload(spec);
  GraceConfig config;
  config.memory_budget = 1ull << 30;
  config.page_size = 2048;
  RealMemory mm;
  JoinResult r = HybridHashJoin(mm, w.build, w.probe, config, nullptr);
  EXPECT_EQ(r.num_partitions, 2u);
  EXPECT_EQ(r.output_tuples, w.expected_matches);
}

// Partition 0 never touches intermediate storage while every other
// partition spills: re-run the two passes structurally by checking that
// spilled partitions hold exactly the non-partition-0 tuples.
TEST(HybridJoinTest, SpilledPartitionsExcludePartitionZero) {
  WorkloadSpec spec;
  spec.num_build_tuples = 6000;
  spec.tuple_size = 20;
  spec.matches_per_build = 1.0;
  JoinWorkload w = GenerateJoinWorkload(spec);
  GraceConfig config;
  config.forced_num_partitions = 5;
  config.page_size = 2048;
  RealMemory mm;
  JoinResult r = HybridHashJoin(mm, w.build, w.probe, config, nullptr);
  EXPECT_EQ(r.num_partitions, 5u);
  EXPECT_EQ(r.output_tuples, w.expected_matches);
  // Cross-check the spill fraction: tuples with hash % 5 != 0 spill. The
  // join's own structure cannot be observed from outside, so recompute
  // the expected split and make sure it is non-degenerate — a workload
  // where partition 0 is empty (or everything lands there) would not
  // exercise the in-place path at all.
  uint64_t in_place = 0;
  w.build.ForEachTuple([&](const uint8_t* t, uint16_t, uint32_t) {
    uint32_t key;
    std::memcpy(&key, t, 4);
    if (HashKey32(key) % 5 == 0) ++in_place;
  });
  EXPECT_GT(in_place, 0u);
  EXPECT_LT(in_place, w.build.num_tuples());
}

// ---------- software-pipelined aggregation ----------

class AggregateSwpTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(AggregateSwpTest, MatchesBaseline) {
  Relation facts(Schema({{"key", AttrType::kInt32, 4},
                         {"value", AttrType::kInt64, 8},
                         {"pad", AttrType::kFixedChar, 4}}));
  Rng rng(51);
  for (int i = 0; i < 20000; ++i) {
    uint8_t t[16] = {};
    uint32_t key = uint32_t(rng.NextBounded(3000));
    int64_t value = rng.NextInRange(-20, 20);
    std::memcpy(t, &key, 4);
    std::memcpy(t + 4, &value, 8);
    facts.Append(t, sizeof(t), HashKey32(key));
  }
  RealMemory mm;
  HashAggTable base(NextRelativelyPrime(3000, 31));
  AggregateBaseline(mm, facts, 4, &base);
  HashAggTable swp(NextRelativelyPrime(3000, 31));
  AggregateSwp(mm, facts, 4, &swp, GetParam());
  ASSERT_EQ(swp.num_groups(), base.num_groups());
  base.ForEachGroup([&](const AggState& s) {
    const AggState* other = swp.Find(s.key);
    ASSERT_NE(other, nullptr) << s.key;
    EXPECT_EQ(other->count, s.count) << s.key;
    EXPECT_EQ(other->sum, s.sum) << s.key;
  });
}

INSTANTIATE_TEST_SUITE_P(Distances, AggregateSwpTest,
                         ::testing::Values(1, 2, 5, 16));

TEST(AggregateSwpTest, EmptyInput) {
  Relation rel(Schema::KeyPayload(16));
  RealMemory mm;
  HashAggTable agg(13);
  AggregateSwp(mm, rel, 4, &agg, 4);
  EXPECT_EQ(agg.num_groups(), 0u);
}

}  // namespace
}  // namespace hashjoin
