#include <cstring>
#include <map>
#include <vector>

#include "gtest/gtest.h"
#include "join/grace.h"
#include "mem/memory_model.h"
#include "util/random.h"
#include "workload/generator.h"

namespace hashjoin {
namespace {

uint32_t KeyOf(const uint8_t* tuple) {
  uint32_t k;
  std::memcpy(&k, tuple, 4);
  return k;
}

// ---------- build kernels ----------

class BuildSchemeTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(BuildSchemeTest, TableMatchesBaselineOracle) {
  if (!SchemeAvailable(GetParam())) GTEST_SKIP();
  WorkloadSpec spec;
  spec.num_build_tuples = 5000;
  spec.tuple_size = 20;
  JoinWorkload w = GenerateJoinWorkload(spec);

  RealMemory mm;
  KernelParams params;
  params.group_size = 8;
  params.prefetch_distance = 2;

  HashTable ht(ChooseBucketCount(w.build.num_tuples(), 31));
  BuildPartition(mm, GetParam(), w.build, &ht, params);
  EXPECT_EQ(ht.num_tuples(), w.build.num_tuples());
  EXPECT_EQ(ht.CountTuplesSlow(), w.build.num_tuples());

  // Every build key must be findable with exactly one exact match.
  w.build.ForEachTuple([&](const uint8_t* t, uint16_t, uint32_t hash) {
    uint32_t key = KeyOf(t);
    int exact = 0;
    ht.Probe(hash, [&](const uint8_t* bt) {
      if (KeyOf(bt) == key) ++exact;
    });
    ASSERT_EQ(exact, 1) << "key " << key;
  });

  // No bucket may be left owned (conflict protocol must release).
  for (uint64_t b = 0; b < ht.num_buckets(); ++b) {
    ASSERT_EQ(ht.bucket(b)->owner, 0u) << "bucket " << b;
  }
}

TEST_P(BuildSchemeTest, SkewedKeysExerciseConflicts) {
  if (!SchemeAvailable(GetParam())) GTEST_SKIP();
  // Heavy duplicates: many tuples of one group hash to the same bucket,
  // triggering the busy-bucket protocols (§4.4 / §5.3).
  Relation rel = GenerateSkewedRelation(4000, 16, 0.99, 50, 3);
  RealMemory mm;
  KernelParams params;
  params.group_size = 16;
  params.prefetch_distance = 4;
  HashTable ht(97);
  BuildPartition(mm, GetParam(), rel, &ht, params);
  EXPECT_EQ(ht.num_tuples(), rel.num_tuples());
  EXPECT_EQ(ht.CountTuplesSlow(), rel.num_tuples());

  // Per-key multiplicity must match the input exactly.
  std::map<uint32_t, int> expected;
  rel.ForEachTuple([&](const uint8_t* t, uint16_t, uint32_t) {
    expected[KeyOf(t)]++;
  });
  for (auto& [key, count] : expected) {
    int got = 0;
    ht.Probe(HashKey32(key), [&](const uint8_t* bt) {
      if (KeyOf(bt) == key) ++got;
    });
    ASSERT_EQ(got, count) << "key " << key;
  }
}

TEST_P(BuildSchemeTest, AllDuplicateKeysSingleBucket) {
  if (!SchemeAvailable(GetParam())) GTEST_SKIP();
  // Worst case: every tuple conflicts.
  Schema schema = Schema::KeyPayload(16);
  Relation rel(schema);
  for (int i = 0; i < 500; ++i) {
    uint8_t t[16] = {};
    uint32_t key = 7;
    std::memcpy(t, &key, 4);
    rel.Append(t, 16, HashKey32(key));
  }
  RealMemory mm;
  KernelParams params;
  params.group_size = 19;
  params.prefetch_distance = 3;
  HashTable ht(13);
  BuildPartition(mm, GetParam(), rel, &ht, params);
  EXPECT_EQ(ht.CountTuplesSlow(), 500u);
}

TEST_P(BuildSchemeTest, EmptyInputIsFine) {
  if (!SchemeAvailable(GetParam())) GTEST_SKIP();
  Relation rel(Schema::KeyPayload(16));
  RealMemory mm;
  HashTable ht(13);
  BuildPartition(mm, GetParam(), rel, &ht, KernelParams{});
  EXPECT_EQ(ht.num_tuples(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, BuildSchemeTest,
                         ::testing::Values(Scheme::kBaseline, Scheme::kSimple,
                                           Scheme::kGroup, Scheme::kSwp,
                                           Scheme::kCoro),
                         [](const auto& info) {
                           return SchemeName(info.param);
                         });

// ---------- probe kernels ----------

struct ProbeCase {
  Scheme scheme;
  uint32_t group_size;
  uint32_t prefetch_distance;
};

class ProbeSchemeTest : public ::testing::TestWithParam<ProbeCase> {};

TEST_P(ProbeSchemeTest, OutputMatchesExpectedExactly) {
  if (!SchemeAvailable(GetParam().scheme)) GTEST_SKIP();
  WorkloadSpec spec;
  spec.num_build_tuples = 3000;
  spec.tuple_size = 24;
  spec.matches_per_build = 2.0;
  spec.probe_match_fraction = 0.8;
  JoinWorkload w = GenerateJoinWorkload(spec);

  RealMemory mm;
  KernelParams params;
  params.group_size = GetParam().group_size;
  params.prefetch_distance = GetParam().prefetch_distance;

  HashTable ht(ChooseBucketCount(w.build.num_tuples(), 31));
  BuildBaseline(mm, w.build, &ht, params);

  Relation out(ConcatSchema(w.build.schema(), w.probe.schema()));
  uint64_t n = ProbePartition(mm, GetParam().scheme, w.probe, ht,
                              spec.tuple_size, params, &out);
  EXPECT_EQ(n, w.expected_matches);
  EXPECT_EQ(out.num_tuples(), w.expected_matches);

  // Every output tuple must carry equal build and probe keys and the
  // payload bytes generated for that key.
  out.ForEachTuple([&](const uint8_t* t, uint16_t len, uint32_t) {
    ASSERT_EQ(len, 2 * spec.tuple_size);
    uint32_t bkey = KeyOf(t);
    uint32_t pkey = KeyOf(t + spec.tuple_size);
    ASSERT_EQ(bkey, pkey);
    uint8_t expect = uint8_t(bkey * 131u + 17u);
    ASSERT_EQ(t[4], expect);
    ASSERT_EQ(t[spec.tuple_size + 4], expect);
  });
}

TEST_P(ProbeSchemeTest, ZeroMatchesWhenDisjoint) {
  if (!SchemeAvailable(GetParam().scheme)) GTEST_SKIP();
  WorkloadSpec spec;
  spec.num_build_tuples = 1000;
  spec.tuple_size = 16;
  JoinWorkload w = GenerateJoinWorkload(spec);
  // Probe with the *build* relation against an empty table later; here
  // build a table from build keys but probe with keys beyond the range.
  Relation probe(Schema::KeyPayload(16));
  for (uint32_t i = 0; i < 500; ++i) {
    uint8_t t[16] = {};
    uint32_t key = 10'000'000 + i;
    std::memcpy(t, &key, 4);
    probe.Append(t, 16, HashKey32(key));
  }
  RealMemory mm;
  KernelParams params;
  params.group_size = GetParam().group_size;
  params.prefetch_distance = GetParam().prefetch_distance;
  HashTable ht(ChooseBucketCount(w.build.num_tuples(), 31));
  BuildBaseline(mm, w.build, &ht, params);
  Relation out(ConcatSchema(w.build.schema(), probe.schema()));
  EXPECT_EQ(ProbePartition(mm, GetParam().scheme, probe, ht, 16, params,
                           &out),
            0u);
}

TEST_P(ProbeSchemeTest, ManyMatchesPerProbeOverflowPath) {
  if (!SchemeAvailable(GetParam().scheme)) GTEST_SKIP();
  // One build key duplicated far beyond the candidate buffer forces the
  // overflow rescan path.
  Schema schema = Schema::KeyPayload(16);
  Relation build(schema);
  uint32_t key = 99;
  for (int i = 0; i < 20; ++i) {
    uint8_t t[16] = {};
    std::memcpy(t, &key, 4);
    build.Append(t, 16, HashKey32(key));
  }
  Relation probe(schema);
  for (int i = 0; i < 7; ++i) {
    uint8_t t[16] = {};
    std::memcpy(t, &key, 4);
    probe.Append(t, 16, HashKey32(key));
  }
  RealMemory mm;
  KernelParams params;
  params.group_size = GetParam().group_size;
  params.prefetch_distance = GetParam().prefetch_distance;
  HashTable ht(7);
  BuildBaseline(mm, build, &ht, params);
  Relation out(ConcatSchema(schema, schema));
  EXPECT_EQ(ProbePartition(mm, GetParam().scheme, probe, ht, 16, params,
                           &out),
            7u * 20u);
}

TEST_P(ProbeSchemeTest, EmptyProbeInput) {
  if (!SchemeAvailable(GetParam().scheme)) GTEST_SKIP();
  Schema schema = Schema::KeyPayload(16);
  Relation build(schema);
  uint8_t t[16] = {};
  build.Append(t, 16, HashKey32(0));
  Relation probe(schema);
  RealMemory mm;
  HashTable ht(7);
  KernelParams params;
  params.group_size = GetParam().group_size;
  params.prefetch_distance = GetParam().prefetch_distance;
  BuildBaseline(mm, build, &ht, params);
  Relation out(ConcatSchema(schema, schema));
  EXPECT_EQ(ProbePartition(mm, GetParam().scheme, probe, ht, 16, params,
                           &out),
            0u);
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndParams, ProbeSchemeTest,
    ::testing::Values(ProbeCase{Scheme::kBaseline, 1, 1},
                      ProbeCase{Scheme::kSimple, 1, 1},
                      ProbeCase{Scheme::kGroup, 1, 1},
                      ProbeCase{Scheme::kGroup, 2, 1},
                      ProbeCase{Scheme::kGroup, 19, 1},
                      ProbeCase{Scheme::kGroup, 97, 1},
                      ProbeCase{Scheme::kSwp, 1, 1},
                      ProbeCase{Scheme::kSwp, 1, 2},
                      ProbeCase{Scheme::kSwp, 1, 7},
                      ProbeCase{Scheme::kSwp, 1, 32},
                      ProbeCase{Scheme::kCoro, 1, 1},
                      ProbeCase{Scheme::kCoro, 2, 1},
                      ProbeCase{Scheme::kCoro, 19, 1},
                      ProbeCase{Scheme::kCoro, 97, 1}),
    [](const auto& info) {
      return std::string(SchemeName(info.param.scheme)) + "_g" +
             std::to_string(info.param.group_size) + "_d" +
             std::to_string(info.param.prefetch_distance);
    });

// ---------- partition kernels ----------

class PartitionSchemeTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(PartitionSchemeTest, PreservesEveryTupleInRightPartition) {
  if (!SchemeAvailable(GetParam())) GTEST_SKIP();
  Relation input = GenerateSourceRelation(20000, 20, 17);
  const uint32_t P = 13;
  std::vector<Relation> parts;
  for (uint32_t p = 0; p < P; ++p) {
    parts.emplace_back(input.schema(), 1024);
  }
  RealMemory mm;
  KernelParams params;
  params.group_size = 10;
  params.prefetch_distance = 3;
  {
    PartitionSinkSet sinks(&parts, 1024);
    PartitionRelation(mm, GetParam(), input, &sinks, P, params);
  }

  uint64_t total = 0;
  std::map<uint32_t, int> in_counts, out_counts;
  input.ForEachTuple([&](const uint8_t* t, uint16_t, uint32_t) {
    in_counts[KeyOf(t)]++;
  });
  for (uint32_t p = 0; p < P; ++p) {
    parts[p].ForEachTuple([&](const uint8_t* t, uint16_t len,
                              uint32_t hash) {
      ASSERT_EQ(len, 20);
      uint32_t key = KeyOf(t);
      // Memoized hash codes must be correct and route to this partition.
      ASSERT_EQ(hash, HashKey32(key));
      ASSERT_EQ(hash % P, p);
      // Payload integrity.
      ASSERT_EQ(t[4], uint8_t(key * 131u + 17u));
      out_counts[key]++;
      ++total;
    });
  }
  EXPECT_EQ(total, input.num_tuples());
  EXPECT_EQ(in_counts, out_counts);
}

TEST_P(PartitionSchemeTest, SinglePartitionDegenerate) {
  if (!SchemeAvailable(GetParam())) GTEST_SKIP();
  Relation input = GenerateSourceRelation(3000, 32, 5);
  std::vector<Relation> parts;
  parts.emplace_back(input.schema(), 2048);
  RealMemory mm;
  {
    PartitionSinkSet sinks(&parts, 2048);
    PartitionRelation(mm, GetParam(), input, &sinks, 1, KernelParams{});
  }
  EXPECT_EQ(parts[0].num_tuples(), input.num_tuples());
}

TEST_P(PartitionSchemeTest, ManyPartitionsFewTuples) {
  if (!SchemeAvailable(GetParam())) GTEST_SKIP();
  Relation input = GenerateSourceRelation(50, 16, 9);
  const uint32_t P = 97;
  std::vector<Relation> parts;
  for (uint32_t p = 0; p < P; ++p) parts.emplace_back(input.schema(), 512);
  RealMemory mm;
  {
    PartitionSinkSet sinks(&parts, 512);
    PartitionRelation(mm, GetParam(), input, &sinks, P, KernelParams{});
  }
  uint64_t total = 0;
  for (auto& p : parts) total += p.num_tuples();
  EXPECT_EQ(total, 50u);
}

TEST_P(PartitionSchemeTest, SkewedInputFloodsOnePartition) {
  if (!SchemeAvailable(GetParam())) GTEST_SKIP();
  // All tuples share few keys: output buffers of hot partitions fill
  // constantly, exercising the full-page conflict protocols (§6).
  Relation input = GenerateSkewedRelation(10000, 20, 1.1, 4, 23);
  const uint32_t P = 5;
  std::vector<Relation> parts;
  for (uint32_t p = 0; p < P; ++p) parts.emplace_back(input.schema(), 512);
  RealMemory mm;
  KernelParams params;
  params.group_size = 32;  // larger than tuples per 512B page
  params.prefetch_distance = 8;
  {
    PartitionSinkSet sinks(&parts, 512);
    PartitionRelation(mm, GetParam(), input, &sinks, P, params);
  }
  uint64_t total = 0;
  std::map<uint32_t, int> in_counts, out_counts;
  input.ForEachTuple(
      [&](const uint8_t* t, uint16_t, uint32_t) { in_counts[KeyOf(t)]++; });
  for (uint32_t p = 0; p < P; ++p) {
    parts[p].ForEachTuple([&](const uint8_t* t, uint16_t, uint32_t h) {
      ASSERT_EQ(h % P, p);
      out_counts[KeyOf(t)]++;
      ++total;
    });
  }
  EXPECT_EQ(total, input.num_tuples());
  EXPECT_EQ(in_counts, out_counts);
}

TEST_P(PartitionSchemeTest, VariableLengthTuplesSurvive) {
  if (!SchemeAvailable(GetParam())) GTEST_SKIP();
  // Mixed tuple lengths (the slotted pages and partition copy paths are
  // length-driven, §7.1 "fixed length and variable length attributes").
  Relation input(Schema::KeyPayload(16), 1024);
  Rng rng(47);
  for (uint32_t i = 0; i < 5000; ++i) {
    uint16_t len = uint16_t(8 + rng.NextBounded(120));
    std::vector<uint8_t> t(len, uint8_t(len));
    std::memcpy(t.data(), &i, 4);
    input.Append(t.data(), len, HashKey32(i));
  }
  const uint32_t P = 7;
  std::vector<Relation> parts;
  for (uint32_t p = 0; p < P; ++p) parts.emplace_back(input.schema(), 1024);
  RealMemory mm;
  KernelParams params;
  params.group_size = 16;
  params.prefetch_distance = 4;
  {
    PartitionSinkSet sinks(&parts, 1024);
    PartitionRelation(mm, GetParam(), input, &sinks, P, params);
  }
  uint64_t total = 0;
  uint64_t bytes = 0;
  for (uint32_t p = 0; p < P; ++p) {
    parts[p].ForEachTuple([&](const uint8_t* t, uint16_t len, uint32_t h) {
      ASSERT_EQ(h % P, p);
      ASSERT_EQ(t[5], uint8_t(len));  // payload byte encodes the length
      ++total;
      bytes += len;
    });
  }
  EXPECT_EQ(total, input.num_tuples());
  EXPECT_EQ(bytes, input.data_bytes());
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, PartitionSchemeTest,
                         ::testing::Values(Scheme::kBaseline, Scheme::kSimple,
                                           Scheme::kGroup, Scheme::kSwp,
                                           Scheme::kCoro),
                         [](const auto& info) {
                           return SchemeName(info.param);
                         });

// ---------- full GRACE join ----------

struct GraceCase {
  Scheme scheme;
  GraceConfig::CacheMode cache_mode;
};

class GraceJoinTest : public ::testing::TestWithParam<GraceCase> {};

TEST_P(GraceJoinTest, EndToEndCountsMatch) {
  if (!SchemeAvailable(GetParam().scheme)) GTEST_SKIP();
  WorkloadSpec spec;
  spec.num_build_tuples = 20000;
  spec.tuple_size = 20;
  spec.matches_per_build = 2.0;
  spec.probe_match_fraction = 0.75;
  JoinWorkload w = GenerateJoinWorkload(spec);

  GraceConfig config;
  config.memory_budget = 200 * 1024;  // force multiple partitions
  config.cache_budget = 32 * 1024;
  config.partition_scheme = GetParam().scheme;
  config.join_scheme = GetParam().scheme;
  config.cache_mode = GetParam().cache_mode;
  config.combined_partition = false;
  config.page_size = 2048;
  config.join_params.group_size = 8;
  config.join_params.prefetch_distance = 2;
  config.partition_params = config.join_params;

  RealMemory mm;
  Relation out(ConcatSchema(w.build.schema(), w.probe.schema()), 2048);
  JoinResult r = GraceHashJoin(mm, w.build, w.probe, config, &out);

  EXPECT_EQ(r.output_tuples, w.expected_matches);
  EXPECT_EQ(out.num_tuples(), w.expected_matches);
  EXPECT_GT(r.num_partitions, 1u);

  // Output correctness: keys equal on both sides.
  out.ForEachTuple([&](const uint8_t* t, uint16_t len, uint32_t) {
    ASSERT_EQ(len, 2 * spec.tuple_size);
    ASSERT_EQ(KeyOf(t), KeyOf(t + spec.tuple_size));
  });
}

TEST_P(GraceJoinTest, NullOutputStillCounts) {
  if (!SchemeAvailable(GetParam().scheme)) GTEST_SKIP();
  WorkloadSpec spec;
  spec.num_build_tuples = 5000;
  spec.tuple_size = 16;
  JoinWorkload w = GenerateJoinWorkload(spec);
  GraceConfig config;
  config.memory_budget = 100 * 1024;
  config.cache_budget = 32 * 1024;
  config.partition_scheme = GetParam().scheme;
  config.join_scheme = GetParam().scheme;
  config.cache_mode = GetParam().cache_mode;
  config.page_size = 2048;
  RealMemory mm;
  JoinResult r = GraceHashJoin(mm, w.build, w.probe, config, nullptr);
  EXPECT_EQ(r.output_tuples, w.expected_matches);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, GraceJoinTest,
    ::testing::Values(
        GraceCase{Scheme::kBaseline, GraceConfig::CacheMode::kNone},
        GraceCase{Scheme::kSimple, GraceConfig::CacheMode::kNone},
        GraceCase{Scheme::kGroup, GraceConfig::CacheMode::kNone},
        GraceCase{Scheme::kSwp, GraceConfig::CacheMode::kNone},
        GraceCase{Scheme::kGroup, GraceConfig::CacheMode::kDirect},
        GraceCase{Scheme::kGroup, GraceConfig::CacheMode::kTwoStep},
        GraceCase{Scheme::kBaseline, GraceConfig::CacheMode::kDirect},
        GraceCase{Scheme::kBaseline, GraceConfig::CacheMode::kTwoStep},
        GraceCase{Scheme::kCoro, GraceConfig::CacheMode::kNone},
        GraceCase{Scheme::kCoro, GraceConfig::CacheMode::kDirect}),
    [](const auto& info) {
      std::string name = SchemeName(info.param.scheme);
      switch (info.param.cache_mode) {
        case GraceConfig::CacheMode::kNone:
          name += "_grace";
          break;
        case GraceConfig::CacheMode::kDirect:
          name += "_directcache";
          break;
        case GraceConfig::CacheMode::kTwoStep:
          name += "_twostepcache";
          break;
      }
      return name;
    });

// ---------- simulated-memory integration ----------

TEST(SimIntegrationTest, GroupPrefetchingBeatsBaselineInSimulator) {
  WorkloadSpec spec;
  spec.num_build_tuples = 20000;
  spec.tuple_size = 20;
  JoinWorkload w = GenerateJoinWorkload(spec);

  auto run = [&](Scheme scheme) {
    sim::SimConfig cfg;  // full Table-2 machine
    sim::MemorySim simulator(cfg);
    SimMemory mm(&simulator);
    KernelParams params;
    params.group_size = 19;
    params.prefetch_distance = 2;
    HashTable ht(ChooseBucketCount(w.build.num_tuples(), 31));
    BuildPartition(mm, scheme, w.build, &ht, params);
    Relation out(ConcatSchema(w.build.schema(), w.probe.schema()));
    uint64_t n = ProbePartition(mm, scheme, w.probe, ht, spec.tuple_size,
                                params, &out);
    EXPECT_EQ(n, w.expected_matches);
    return simulator.stats();
  };

  sim::SimStats base = run(Scheme::kBaseline);
  sim::SimStats group = run(Scheme::kGroup);
  sim::SimStats swp = run(Scheme::kSwp);

  // The headline result: 2-3X in the simulator for the join phase.
  EXPECT_GT(base.TotalCycles(), group.TotalCycles() * 3 / 2);
  EXPECT_GT(base.TotalCycles(), swp.TotalCycles() * 3 / 2);
  // Baseline is stall-dominated (paper: 73%+).
  EXPECT_GT(base.dcache_stall_cycles, base.TotalCycles() / 2);
  // Prefetching hides most data-cache stalls.
  EXPECT_LT(group.dcache_stall_cycles, base.dcache_stall_cycles / 3);
}

TEST(SimIntegrationTest, CycleBucketsPartitionTotal) {
  WorkloadSpec spec;
  spec.num_build_tuples = 3000;
  spec.tuple_size = 20;
  JoinWorkload w = GenerateJoinWorkload(spec);
  sim::MemorySim simulator{sim::SimConfig{}};
  SimMemory mm(&simulator);
  GraceConfig config;
  config.memory_budget = 256 * 1024;
  config.page_size = 2048;
  RealMemory unused;
  Relation out(ConcatSchema(w.build.schema(), w.probe.schema()), 2048);
  GraceHashJoin(mm, w.build, w.probe, config, &out);
  sim::SimStats s = simulator.stats();
  EXPECT_EQ(s.TotalCycles(), simulator.now());
  EXPECT_GT(s.busy_cycles, 0u);
}

}  // namespace
}  // namespace hashjoin
