// Fault-tolerance tests: the fault-injecting disk wrapper, checksum +
// retry recovery through the buffer manager, and the disk GRACE join's
// skew-robust overflow handling. Registered under the `faults` ctest
// label (ctest -L faults).

#include <cstring>
#include <vector>

#include "gtest/gtest.h"
#include "hash/hash_func.h"
#include "join/grace_disk.h"
#include "storage/fault_injection.h"
#include "workload/generator.h"

namespace hashjoin {
namespace {

DiskConfig FastDisk() {
  DiskConfig cfg;
  cfg.bandwidth_mb_per_s = 20000;
  cfg.request_latency_us = 0;
  return cfg;
}

BufferManagerConfig FastDisks(uint32_t n) {
  BufferManagerConfig cfg;
  cfg.num_disks = n;
  cfg.disk = FastDisk();
  return cfg;
}

// ---------- FaultInjectingDisk ----------

TEST(FaultInjectingDiskTest, PassThroughWhenDisabled) {
  DiskConfig cfg = FastDisk();
  ASSERT_FALSE(cfg.fault.enabled());
  FaultInjectingDisk disk(cfg);
  std::vector<uint8_t> page(cfg.page_size, 0x42);
  ASSERT_TRUE(disk.WritePage(0, page.data()).ok());
  std::vector<uint8_t> got(cfg.page_size, 0);
  ASSERT_TRUE(disk.ReadPage(0, got.data()).ok());
  EXPECT_EQ(got, page);
  EXPECT_EQ(disk.injected_faults(), 0u);
}

TEST(FaultInjectingDiskTest, ScriptedOpsFailExactly) {
  DiskConfig cfg = FastDisk();
  cfg.fault.scripted_error_ops = {1, 3};
  FaultInjectingDisk disk(cfg);
  std::vector<uint8_t> page(cfg.page_size, 1);
  EXPECT_TRUE(disk.WritePage(0, page.data()).ok());   // op 0
  EXPECT_EQ(disk.WritePage(1, page.data()).code(),    // op 1
            StatusCode::kIOError);
  EXPECT_TRUE(disk.WritePage(1, page.data()).ok());   // op 2 (the retry)
  EXPECT_EQ(disk.ReadPage(0, page.data()).code(),     // op 3
            StatusCode::kIOError);
  EXPECT_TRUE(disk.ReadPage(0, page.data()).ok());    // op 4
  EXPECT_EQ(disk.injected_write_errors(), 1u);
  EXPECT_EQ(disk.injected_read_errors(), 1u);
  EXPECT_EQ(disk.injected_torn_writes(), 0u);
}

TEST(FaultInjectingDiskTest, TornWritePersistsHalfAndReportsSuccess) {
  DiskConfig cfg = FastDisk();
  cfg.fault.torn_page_rate = 1.0;
  FaultInjectingDisk disk(cfg);
  std::vector<uint8_t> page(cfg.page_size, 0x42);
  ASSERT_TRUE(disk.WritePage(0, page.data()).ok());  // lies about success
  EXPECT_EQ(disk.injected_torn_writes(), 1u);
  std::vector<uint8_t> got(cfg.page_size, 0);
  ASSERT_TRUE(disk.ReadPage(0, got.data()).ok());
  // First half persisted, second half replaced with junk.
  EXPECT_EQ(std::memcmp(got.data(), page.data(), cfg.page_size / 2), 0);
  EXPECT_NE(std::memcmp(got.data() + cfg.page_size / 2,
                        page.data() + cfg.page_size / 2,
                        cfg.page_size - cfg.page_size / 2),
            0);
}

TEST(FaultInjectingDiskTest, ConsecutiveFaultCapGuaranteesProgress) {
  DiskConfig cfg = FastDisk();
  cfg.fault.read_error_rate = 1.0;  // would fail forever without the cap
  cfg.fault.max_consecutive_faults = 2;
  FaultInjectingDisk disk(cfg);
  std::vector<uint8_t> page(cfg.page_size, 7);
  // Writes are eligible too (write_error_rate is 0, so they pass).
  ASSERT_TRUE(disk.WritePage(0, page.data()).ok());
  int failures_before_success = 0;
  Status st;
  do {
    st = disk.ReadPage(0, page.data());
    if (!st.ok()) ++failures_before_success;
    ASSERT_LE(failures_before_success, 2);
  } while (!st.ok());
  EXPECT_EQ(failures_before_success, 2);
}

TEST(FaultInjectingDiskTest, SameSeedSameFaultSequence) {
  DiskConfig cfg = FastDisk();
  cfg.fault.read_error_rate = 0.3;
  cfg.fault.write_error_rate = 0.3;
  cfg.fault.seed = 1234;
  FaultInjectingDisk a(cfg, /*seed_salt=*/1);
  FaultInjectingDisk b(cfg, /*seed_salt=*/1);
  std::vector<uint8_t> page(cfg.page_size, 1);
  std::vector<bool> pattern_a, pattern_b;
  for (int i = 0; i < 64; ++i) {
    pattern_a.push_back(a.WritePage(0, page.data()).ok());
    pattern_b.push_back(b.WritePage(0, page.data()).ok());
  }
  EXPECT_EQ(pattern_a, pattern_b);
  EXPECT_GT(a.injected_write_errors(), 0u);
  EXPECT_EQ(a.injected_write_errors(), b.injected_write_errors());
  // A different salt must give a different (but still seeded) sequence.
  FaultInjectingDisk c(cfg, /*seed_salt=*/2);
  std::vector<bool> pattern_c;
  for (int i = 0; i < 64; ++i) {
    pattern_c.push_back(c.WritePage(0, page.data()).ok());
  }
  EXPECT_NE(pattern_a, pattern_c);
}

// ---------- end-to-end fault recovery through the disk join ----------

DiskJoinResult MustJoin(DiskGraceJoin& join, const JoinWorkload& w) {
  auto b = join.StoreRelation(w.build);
  auto p = join.StoreRelation(w.probe);
  EXPECT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  auto r = join.Join(b.value(), p.value());
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.value();
}

TEST(FaultyDiskJoinTest, SeededFaultsRecoverToExactCleanResult) {
  WorkloadSpec spec;
  spec.num_build_tuples = 8000;
  spec.tuple_size = 100;
  spec.matches_per_build = 2.0;
  JoinWorkload w = GenerateJoinWorkload(spec);

  // Reference run on clean disks.
  uint64_t clean_matches;
  {
    BufferManager bm(FastDisks(2));
    DiskGraceJoin join(&bm, 7);
    DiskJoinResult r = MustJoin(join, w);
    clean_matches = r.output_tuples;
    EXPECT_EQ(clean_matches, w.expected_matches);
    EXPECT_EQ(r.recovery.injected_faults, 0u);
  }

  // Same join under seeded transient errors and torn pages. Write
  // verification must be on: a torn page reports success, so only the
  // read-back catches it while a rewrite can still fix it.
  BufferManagerConfig cfg = FastDisks(2);
  cfg.disk.fault.read_error_rate = 0.02;
  cfg.disk.fault.write_error_rate = 0.02;
  cfg.disk.fault.torn_page_rate = 0.02;
  cfg.disk.fault.seed = 0xFA11;
  cfg.verify_writes = true;
  BufferManager bm(cfg);
  DiskGraceJoin join(&bm, 7);
  DiskJoinResult r = MustJoin(join, w);

  EXPECT_EQ(r.output_tuples, clean_matches);
  EXPECT_GT(r.recovery.injected_faults, 0u);
  EXPECT_GT(r.recovery.read_retries + r.recovery.write_retries, 0u);
  EXPECT_GT(r.recovery.write_verify_failures, 0u);  // torn pages repaired
}

TEST(FaultyDiskJoinTest, FaultRecoveryIsDeterministic) {
  WorkloadSpec spec;
  spec.num_build_tuples = 4000;
  spec.tuple_size = 100;
  spec.matches_per_build = 1.0;
  JoinWorkload w = GenerateJoinWorkload(spec);

  auto run = [&] {
    BufferManagerConfig cfg = FastDisks(2);
    cfg.disk.fault.read_error_rate = 0.05;
    cfg.disk.fault.write_error_rate = 0.05;
    cfg.disk.fault.seed = 99;
    BufferManager bm(cfg);
    DiskGraceJoin join(&bm, 5);
    return MustJoin(join, w);
  };
  DiskJoinResult r1 = run();
  DiskJoinResult r2 = run();
  EXPECT_EQ(r1.output_tuples, w.expected_matches);
  EXPECT_EQ(r2.output_tuples, w.expected_matches);
  // The injector draws its RNG per disk operation in a fixed order, so
  // two identical runs inject identical fault sequences.
  EXPECT_GT(r1.recovery.injected_faults, 0u);
  EXPECT_EQ(r1.recovery.injected_faults, r2.recovery.injected_faults);
  EXPECT_EQ(r1.recovery.read_retries, r2.recovery.read_retries);
  EXPECT_EQ(r1.recovery.write_retries, r2.recovery.write_retries);
}

TEST(FaultyDiskJoinTest, TornPagesWithoutWriteVerifySurfaceDataLoss) {
  WorkloadSpec spec;
  spec.num_build_tuples = 3000;
  spec.tuple_size = 100;
  spec.matches_per_build = 1.0;
  JoinWorkload w = GenerateJoinWorkload(spec);

  BufferManagerConfig cfg = FastDisks(1);
  cfg.disk.fault.torn_page_rate = 0.5;
  cfg.disk.fault.seed = 7;
  ASSERT_FALSE(cfg.verify_writes);
  BufferManager bm(cfg);
  DiskGraceJoin join(&bm, 4);
  auto b = join.StoreRelation(w.build);
  auto p = join.StoreRelation(w.probe);
  // Tears report success, so the writes appear fine...
  ASSERT_TRUE(b.ok() && p.ok());
  // ...but the join must refuse to produce an answer from corrupt pages:
  // checksums turn silent wrong results into an explicit kDataLoss.
  auto r = join.Join(b.value(), p.value());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  EXPECT_GT(bm.recovery_stats().checksum_failures, 0u);
}

// ---------- skew-robust overflow handling ----------

// Builds a relation of `n` unique-keyed 100-byte tuples where at least
// 90% of keys land in partition 0 of a `parts`-way split (the rest are
// spread normally), by rejection-sampling keys on HashKey32.
Relation SkewedRelation(uint64_t n, uint32_t parts,
                        std::vector<uint32_t>* keys_out) {
  Relation rel(Schema::KeyPayload(100));
  uint64_t hot = n * 9 / 10;
  uint32_t candidate = 1;
  std::vector<uint8_t> tuple(100, 0);
  for (uint64_t i = 0; i < n; ++i) {
    bool want_hot = i < hot;
    while ((HashKey32(candidate) % parts == 0) != want_hot) ++candidate;
    std::memcpy(tuple.data(), &candidate, 4);
    rel.Append(tuple.data(), 100, HashKey32(candidate));
    if (keys_out != nullptr) keys_out->push_back(candidate);
    ++candidate;
  }
  return rel;
}

TEST(SkewedDiskJoinTest, RecursiveRepartitioningStaysWithinBudget) {
  const uint32_t parts = 4;
  std::vector<uint32_t> keys;
  Relation build = SkewedRelation(4000, parts, &keys);
  // Probe with the same keys: unique on both sides -> 4000 matches.
  Relation probe = SkewedRelation(4000, parts, nullptr);

  BufferManager bm(FastDisks(2));
  DiskJoinConfig cfg;
  cfg.num_partitions = parts;
  cfg.memory_budget = 128 * 1024;
  cfg.overflow_fanout = 8;
  cfg.max_recursion_depth = 4;
  DiskGraceJoin join(&bm, cfg);
  auto b = join.StoreRelation(build);
  auto p = join.StoreRelation(probe);
  ASSERT_TRUE(b.ok() && p.ok());
  auto r = join.Join(b.value(), p.value());
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  EXPECT_EQ(r.value().output_tuples, 4000u);
  // The hot partition exceeded the budget and was recursively split; no
  // in-memory build was ever allowed past the budget.
  EXPECT_GT(r.value().recovery.recursive_splits, 0u);
  EXPECT_GE(r.value().recovery.deepest_recursion, 1u);
  EXPECT_EQ(r.value().recovery.chunked_fallbacks, 0u);
  EXPECT_LE(r.value().recovery.max_build_bytes, cfg.memory_budget);
}

TEST(SkewedDiskJoinTest, IdenticalKeysFallBackToBlockNestedLoop) {
  // One giant key: salted rehash cannot split it (every copy shares the
  // hash code), so the join must not burn recursion levels. And because
  // every chunk's hash table would degenerate to a single chain, the
  // ladder's last rung — block nested loop — beats the chunked build.
  const uint32_t kKey = 12345;
  Relation build(Schema::KeyPayload(100));
  Relation probe(Schema::KeyPayload(100));
  std::vector<uint8_t> tuple(100, 0);
  std::memcpy(tuple.data(), &kKey, 4);
  for (int i = 0; i < 2000; ++i) {
    build.Append(tuple.data(), 100, HashKey32(kKey));
  }
  for (int i = 0; i < 100; ++i) {
    probe.Append(tuple.data(), 100, HashKey32(kKey));
  }

  BufferManager bm(FastDisks(2));
  DiskJoinConfig cfg;
  cfg.num_partitions = 4;
  cfg.memory_budget = 64 * 1024;
  cfg.max_recursion_depth = 4;
  // The tiny probe side would otherwise be adopted as the build via role
  // reversal and fit in memory; this test is about the chunked rung.
  cfg.role_reversal = false;
  DiskGraceJoin join(&bm, cfg);
  auto b = join.StoreRelation(build);
  auto p = join.StoreRelation(probe);
  ASSERT_TRUE(b.ok() && p.ok());
  auto r = join.Join(b.value(), p.value());
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  EXPECT_EQ(r.value().output_tuples, 2000u * 100u);  // full cross product
  EXPECT_EQ(r.value().recovery.recursive_splits, 0u);  // no progress
  EXPECT_EQ(r.value().recovery.chunked_fallbacks, 0u);
  EXPECT_GT(r.value().recovery.bnl_fallbacks, 0u);
}

TEST(SkewedDiskJoinTest, DepthCapZeroGoesStraightToChunked) {
  const uint32_t parts = 4;
  Relation build = SkewedRelation(3000, parts, nullptr);
  Relation probe = SkewedRelation(3000, parts, nullptr);

  BufferManager bm(FastDisks(1));
  DiskJoinConfig cfg;
  cfg.num_partitions = parts;
  cfg.memory_budget = 96 * 1024;
  cfg.max_recursion_depth = 0;  // recursion disabled entirely
  DiskGraceJoin join(&bm, cfg);
  auto b = join.StoreRelation(build);
  auto p = join.StoreRelation(probe);
  ASSERT_TRUE(b.ok() && p.ok());
  auto r = join.Join(b.value(), p.value());
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  EXPECT_EQ(r.value().output_tuples, 3000u);
  EXPECT_EQ(r.value().recovery.recursive_splits, 0u);
  EXPECT_EQ(r.value().recovery.deepest_recursion, 0u);
  EXPECT_GT(r.value().recovery.chunked_fallbacks, 0u);
}

TEST(SkewedDiskJoinTest, FaultsAndSkewTogetherStillJoinExactly) {
  // The two recovery layers compose: transient I/O faults during the
  // extra recursion passes are retried like any other I/O.
  const uint32_t parts = 4;
  Relation build = SkewedRelation(3000, parts, nullptr);
  Relation probe = SkewedRelation(3000, parts, nullptr);

  BufferManagerConfig bmc = FastDisks(2);
  bmc.disk.fault.read_error_rate = 0.02;
  bmc.disk.fault.write_error_rate = 0.02;
  bmc.disk.fault.seed = 31337;
  BufferManager bm(bmc);
  DiskJoinConfig cfg;
  cfg.num_partitions = parts;
  cfg.memory_budget = 128 * 1024;
  DiskGraceJoin join(&bm, cfg);
  auto b = join.StoreRelation(build);
  auto p = join.StoreRelation(probe);
  ASSERT_TRUE(b.ok() && p.ok());
  auto r = join.Join(b.value(), p.value());
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  EXPECT_EQ(r.value().output_tuples, 3000u);
  EXPECT_GT(r.value().recovery.injected_faults, 0u);
  EXPECT_GT(r.value().recovery.recursive_splits, 0u);
  EXPECT_LE(r.value().recovery.max_build_bytes, cfg.memory_budget);
}

}  // namespace
}  // namespace hashjoin
