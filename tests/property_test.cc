// Property-style randomized suites: data-structure model tests and
// whole-join invariants over randomly drawn configurations. All seeds
// are fixed, so failures reproduce deterministically.

#include <cstring>
#include <vector>

#include "gtest/gtest.h"
#include "join/grace.h"
#include "mem/memory_model.h"
#include "simcache/memory_sim.h"
#include "util/random.h"
#include "workload/generator.h"

namespace hashjoin {
namespace {

// ---------- slotted page vs oracle model ----------

class SlottedPageModelTest : public ::testing::TestWithParam<int> {};

TEST_P(SlottedPageModelTest, RandomFillMatchesOracle) {
  Rng rng(uint64_t(GetParam()) * 7919 + 1);
  uint32_t page_size = uint32_t(256 << rng.NextBounded(5));  // 256..4096
  std::vector<uint8_t> buf(page_size);
  SlottedPage page = SlottedPage::Format(buf.data(), page_size);

  std::vector<std::vector<uint8_t>> oracle;
  std::vector<uint32_t> hashes;
  for (;;) {
    uint16_t len = uint16_t(1 + rng.NextBounded(120));
    std::vector<uint8_t> tuple(len);
    for (auto& b : tuple) b = uint8_t(rng.Next());
    uint32_t hash = uint32_t(rng.Next());
    int idx = page.AddTuple(tuple.data(), len, hash);
    if (idx < 0) break;
    ASSERT_EQ(idx, int(oracle.size()));
    oracle.push_back(std::move(tuple));
    hashes.push_back(hash);
  }
  ASSERT_GT(oracle.size(), 0u);
  ASSERT_EQ(page.slot_count(), int(oracle.size()));
  for (size_t i = 0; i < oracle.size(); ++i) {
    uint16_t len = 0;
    const uint8_t* t = page.GetTuple(int(i), &len);
    ASSERT_EQ(len, oracle[i].size());
    ASSERT_EQ(std::memcmp(t, oracle[i].data(), len), 0) << i;
    ASSERT_EQ(page.GetHashCode(int(i)), hashes[i]) << i;
  }
  // The page never over-commits: used bytes fit the page.
  uint32_t payload = 0;
  for (auto& t : oracle) payload += uint32_t(t.size());
  EXPECT_LE(payload + sizeof(SlottedPage::PageHeader) +
                oracle.size() * sizeof(SlottedPage::Slot),
            page_size);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlottedPageModelTest,
                         ::testing::Range(0, 20));

// ---------- relation round trip over random shapes ----------

class RelationModelTest : public ::testing::TestWithParam<int> {};

TEST_P(RelationModelTest, RandomAppendsRoundTrip) {
  Rng rng(uint64_t(GetParam()) * 104729 + 3);
  uint32_t page_size = uint32_t(512 << rng.NextBounded(4));
  Relation rel(Schema::KeyPayload(16), page_size);
  std::vector<std::vector<uint8_t>> oracle;
  uint64_t n = 50 + rng.NextBounded(500);
  for (uint64_t i = 0; i < n; ++i) {
    uint16_t len = uint16_t(8 + rng.NextBounded(100));
    std::vector<uint8_t> tuple(len);
    for (auto& b : tuple) b = uint8_t(rng.Next());
    rel.Append(tuple.data(), len, uint32_t(i));
    oracle.push_back(std::move(tuple));
  }
  ASSERT_EQ(rel.num_tuples(), oracle.size());
  size_t i = 0;
  rel.ForEachTuple([&](const uint8_t* t, uint16_t len, uint32_t hash) {
    ASSERT_LT(i, oracle.size());
    ASSERT_EQ(len, oracle[i].size());
    ASSERT_EQ(std::memcmp(t, oracle[i].data(), len), 0) << i;
    ASSERT_EQ(hash, uint32_t(i));
    ++i;
  });
  EXPECT_EQ(i, oracle.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelationModelTest, ::testing::Range(0, 15));

// ---------- simulator invariants over random traces ----------

class SimInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(SimInvariantTest, BucketsPartitionTimeAndAccessesClassified) {
  Rng rng(uint64_t(GetParam()) * 31337 + 5);
  sim::SimConfig cfg;
  cfg.l1d_size = 4096;
  cfg.l2_size = 32768;
  cfg.dtlb_entries = 4;
  cfg.miss_handlers = 1 + uint32_t(rng.NextBounded(32));
  cfg.memory_bandwidth_gap = 1 + uint32_t(rng.NextBounded(30));
  cfg.memory_latency = 50 + uint32_t(rng.NextBounded(500));
  if (rng.NextBool(0.3)) cfg.flush_period_cycles = 5000;
  sim::MemorySim sim(cfg);
  auto buf = MakeAlignedBuffer<uint8_t>(1 << 16);
  uint64_t accesses = 0;
  for (int i = 0; i < 3000; ++i) {
    switch (rng.NextBounded(4)) {
      case 0:
        sim.Busy(uint32_t(rng.NextBounded(50)));
        break;
      case 1:
        // 8-byte aligned so one access touches exactly one line.
        sim.Access(buf.get() + (rng.NextBounded(1 << 16) & ~7ull), 8,
                   rng.NextBool(0.5));
        ++accesses;
        break;
      case 2:
        sim.Prefetch(buf.get() + rng.NextBounded((1 << 16) - 8), 8);
        break;
      case 3:
        sim.Branch(uint32_t(rng.NextBounded(8)), rng.NextBool(0.6));
        break;
    }
  }
  sim::SimStats s = sim.stats();
  EXPECT_EQ(s.TotalCycles(), sim.now());
  EXPECT_EQ(s.DemandLineAccesses(), accesses);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimInvariantTest, ::testing::Range(0, 25));

TEST(SimDeterminismTest, IdenticalTracesIdenticalStats) {
  // One buffer shared by both runs: the trace's addresses are part of
  // the trace. A per-run allocation can land at a different heap
  // offset, changing the set-conflict pattern — that would compare two
  // different traces and test the allocator, not the simulator.
  auto buf = MakeAlignedBuffer<uint8_t>(1 << 14);
  auto run = [&buf] {
    sim::MemorySim sim{sim::SimConfig{}};
    Rng rng(99);
    for (int i = 0; i < 2000; ++i) {
      sim.Busy(3);
      sim.Access(buf.get() + rng.NextBounded((1 << 14) - 8), 8, false);
      if (i % 3 == 0) {
        sim.Prefetch(buf.get() + rng.NextBounded((1 << 14) - 8), 8);
      }
    }
    return sim.stats();
  };
  sim::SimStats a = run();
  sim::SimStats b = run();
  EXPECT_EQ(a.TotalCycles(), b.TotalCycles());
  EXPECT_EQ(a.full_misses, b.full_misses);
  EXPECT_EQ(a.prefetch_hidden, b.prefetch_hidden);
}

// ---------- whole-join property sweep ----------

struct JoinPropertyCase {
  uint64_t seed;
};

class JoinPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(JoinPropertyTest, RandomConfigurationJoinsExactly) {
  Rng rng(uint64_t(GetParam()) * 65537 + 9);
  WorkloadSpec spec;
  spec.seed = rng.Next();
  spec.num_build_tuples = 500 + rng.NextBounded(8000);
  spec.tuple_size = uint32_t(12 + 4 * rng.NextBounded(32));  // 12..136
  spec.matches_per_build = 0.5 + double(rng.NextBounded(7)) * 0.5;
  spec.build_match_fraction = 0.25 + rng.NextDouble() * 0.75;
  spec.probe_match_fraction = 0.25 + rng.NextDouble() * 0.75;
  JoinWorkload w = GenerateJoinWorkload(spec);

  GraceConfig config;
  config.memory_budget = 32 * 1024 + rng.NextBounded(512 * 1024);
  config.page_size = uint32_t(1024 << rng.NextBounded(4));
  Scheme schemes[] = {Scheme::kBaseline, Scheme::kSimple, Scheme::kGroup,
                      Scheme::kSwp};
  config.partition_scheme = schemes[rng.NextBounded(4)];
  config.join_scheme = schemes[rng.NextBounded(4)];
  config.join_params.group_size = uint32_t(1 + rng.NextBounded(64));
  config.join_params.prefetch_distance = uint32_t(1 + rng.NextBounded(16));
  config.partition_params = config.join_params;
  config.combined_partition = rng.NextBool(0.5);
  switch (rng.NextBounded(3)) {
    case 0:
      config.cache_mode = GraceConfig::CacheMode::kNone;
      break;
    case 1:
      config.cache_mode = GraceConfig::CacheMode::kDirect;
      break;
    case 2:
      config.cache_mode = GraceConfig::CacheMode::kTwoStep;
      break;
  }
  config.cache_budget = 16 * 1024 + rng.NextBounded(64 * 1024);

  RealMemory mm;
  JoinResult r = GraceHashJoin(mm, w.build, w.probe, config, nullptr);
  EXPECT_EQ(r.output_tuples, w.expected_matches)
      << "seed=" << GetParam() << " scheme=" << SchemeName(config.join_scheme)
      << " parts=" << r.num_partitions;
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinPropertyTest, ::testing::Range(0, 30));

}  // namespace
}  // namespace hashjoin
