#include "gtest/gtest.h"
#include "model/cost_model.h"

namespace hashjoin {
namespace model {
namespace {

CodeCosts ProbeLikeCosts() {
  // k = 3: C0 (hash), C1 (header), C2 (cells), C3 (compare + emit).
  return CodeCosts{{30, 10, 8, 34}};
}

MachineParams DefaultMachine() { return MachineParams{150, 10}; }

TEST(GroupModelTest, ConditionMatchesTheorem1Arithmetic) {
  CodeCosts costs = ProbeLikeCosts();
  MachineParams m = DefaultMachine();
  // (G-1)*C0 >= 150 -> G >= 6; (G-1)*max{C1,Tnext}=10(G-1) >= 150 -> G>=16;
  // C2: max{8,10}=10 -> G>=16; C3: 34(G-1)>=150 -> G>=6. So min G = 16.
  EXPECT_FALSE(GroupPrefetchModel::ConditionHolds(costs, m, 15));
  EXPECT_TRUE(GroupPrefetchModel::ConditionHolds(costs, m, 16));
  EXPECT_EQ(GroupPrefetchModel::MinGroupSize(costs, m), 16u);
}

TEST(GroupModelTest, LargerLatencyNeedsLargerGroup) {
  CodeCosts costs = ProbeLikeCosts();
  uint32_t g150 = GroupPrefetchModel::MinGroupSize(costs, {150, 10});
  uint32_t g1000 = GroupPrefetchModel::MinGroupSize(costs, {1000, 10});
  EXPECT_GT(g1000, g150);
}

TEST(GroupModelTest, EmptyCode0NeverSatisfies) {
  CodeCosts costs{{0, 20, 20}};
  EXPECT_EQ(GroupPrefetchModel::MinGroupSize(costs, DefaultMachine()), 0u);
}

TEST(GroupModelTest, CriticalPathConvergesToBusyTimeWhenHidden) {
  CodeCosts costs = ProbeLikeCosts();
  MachineParams m = DefaultMachine();
  uint32_t g = GroupPrefetchModel::MinGroupSize(costs, m);
  const uint64_t n = 16000;
  uint64_t cp = GroupPrefetchModel::CriticalPathCycles(costs, m, g, n, 1);
  // Busy-only lower bound: every code stage + prefetch issues.
  uint64_t busy = n * (30 + 10 + 8 + 34 + 3 /*prefetch issues*/);
  // Bandwidth floor: stages where Tnext > Ci pay the gap instead.
  uint64_t bw = n * (30 + 1 + 10 + 10 + 34);
  uint64_t floor = std::max(busy, bw);
  EXPECT_GE(cp, floor);
  EXPECT_LT(cp, floor * 1.15);  // latency edges no longer bind
}

TEST(GroupModelTest, CriticalPathExposesLatencyWhenGroupTooSmall) {
  CodeCosts costs = ProbeLikeCosts();
  MachineParams m = DefaultMachine();
  const uint64_t n = 16000;
  uint64_t cp_small =
      GroupPrefetchModel::CriticalPathCycles(costs, m, 2, n, 1);
  uint64_t cp_right = GroupPrefetchModel::CriticalPathCycles(
      costs, m, GroupPrefetchModel::MinGroupSize(costs, m), n, 1);
  EXPECT_GT(cp_small, cp_right * 2);
}

TEST(GroupModelTest, BaselineWorseThanAnyGroupPrefetch) {
  CodeCosts costs = ProbeLikeCosts();
  MachineParams m = DefaultMachine();
  const uint64_t n = 10000;
  uint64_t base = BaselineCycles(costs, m, n);
  uint64_t gp = GroupPrefetchModel::CriticalPathCycles(costs, m, 16, n, 1);
  EXPECT_GT(base, gp * 2);  // the paper's 2-3X regime
}

TEST(SwpModelTest, ConditionMatchesTheorem2Arithmetic) {
  CodeCosts costs = ProbeLikeCosts();
  MachineParams m = DefaultMachine();
  // Row = max{C0+C3, 10} + max{C1,10} + max{C2,10} = 64 + 10 + 10 = 84.
  // D*84 >= 150 -> D >= 2.
  EXPECT_FALSE(SwpPrefetchModel::ConditionHolds(costs, m, 1));
  EXPECT_TRUE(SwpPrefetchModel::ConditionHolds(costs, m, 2));
  EXPECT_EQ(SwpPrefetchModel::MinDistance(costs, m), 2u);
}

TEST(SwpModelTest, AlwaysSatisfiableEvenWithEmptyCode0) {
  CodeCosts costs{{0, 20, 20}};
  EXPECT_GT(SwpPrefetchModel::MinDistance(costs, DefaultMachine()), 0u);
}

TEST(SwpModelTest, StateArraySizing) {
  // Smallest power of two >= k*D + 1 (§5.3).
  EXPECT_EQ(SwpPrefetchModel::StateArraySize(3, 1), 4u);
  EXPECT_EQ(SwpPrefetchModel::StateArraySize(3, 2), 8u);
  EXPECT_EQ(SwpPrefetchModel::StateArraySize(3, 5), 16u);
  EXPECT_EQ(SwpPrefetchModel::StateArraySize(2, 1), 4u);
}

TEST(SwpModelTest, CriticalPathConvergesToBusyTimeWhenHidden) {
  CodeCosts costs = ProbeLikeCosts();
  MachineParams m = DefaultMachine();
  uint32_t d = SwpPrefetchModel::MinDistance(costs, m);
  const uint64_t n = 16000;
  uint64_t cp = SwpPrefetchModel::CriticalPathCycles(costs, m, d, n, 1);
  uint64_t busy = n * (30 + 10 + 8 + 34 + 3);
  uint64_t bw = n * (30 + 1 + 10 + 10 + 34);
  uint64_t floor = std::max(busy, bw);
  EXPECT_GE(cp, floor * 95 / 100);
  EXPECT_LT(cp, floor * 115 / 100);
}

TEST(SwpModelTest, TooSmallDistanceExposesLatency) {
  // Make per-row work small so D=1 cannot hide T.
  CodeCosts costs{{5, 5, 5, 5}};
  MachineParams m{600, 2};
  const uint64_t n = 8000;
  uint64_t d1 = SwpPrefetchModel::CriticalPathCycles(costs, m, 1, n, 1);
  uint32_t dmin = SwpPrefetchModel::MinDistance(costs, m);
  ASSERT_GT(dmin, 1u);
  uint64_t dright = SwpPrefetchModel::CriticalPathCycles(costs, m, dmin, n, 1);
  EXPECT_GT(d1, dright * 3 / 2);
}

TEST(SwpModelTest, SwpNoWorseThanGroupAtSteadyState) {
  // The paper's §5.4: SPP avoids the inter-group bubbles, so its modeled
  // runtime is <= group prefetching's at respective optimal parameters.
  CodeCosts costs = ProbeLikeCosts();
  MachineParams m = DefaultMachine();
  const uint64_t n = 16000;
  uint64_t gp = GroupPrefetchModel::CriticalPathCycles(
      costs, m, GroupPrefetchModel::MinGroupSize(costs, m), n, 1);
  uint64_t spp = SwpPrefetchModel::CriticalPathCycles(
      costs, m, SwpPrefetchModel::MinDistance(costs, m), n, 1);
  EXPECT_LE(spp, gp * 102 / 100);
}

TEST(BaselineModelTest, Arithmetic) {
  CodeCosts costs{{10, 20, 30}};
  MachineParams m{100, 5};
  // Per element: 10+20+30 busy + 2 * 100 latency = 260.
  EXPECT_EQ(BaselineCycles(costs, m, 7), 7u * 260u);
}

// Property sweep: for many random cost vectors, the solved minimum G/D
// indeed satisfies the condition and (min-1) does not.
class ModelPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ModelPropertyTest, MinimaAreTight) {
  int seed = GetParam();
  // Cheap deterministic pseudo-random costs.
  auto r = [&](int i, int mod) {
    return uint32_t((seed * 2654435761u + i * 40503u) % mod + 1);
  };
  CodeCosts costs{{r(0, 40), r(1, 40), r(2, 40), r(3, 40)}};
  MachineParams m{uint32_t(100 + r(4, 900)), uint32_t(1 + r(5, 20))};

  uint32_t g = GroupPrefetchModel::MinGroupSize(costs, m);
  ASSERT_GT(g, 0u);
  EXPECT_TRUE(GroupPrefetchModel::ConditionHolds(costs, m, g));
  EXPECT_FALSE(GroupPrefetchModel::ConditionHolds(costs, m, g - 1));

  uint32_t d = SwpPrefetchModel::MinDistance(costs, m);
  ASSERT_GT(d, 0u);
  EXPECT_TRUE(SwpPrefetchModel::ConditionHolds(costs, m, d));
  if (d > 1) EXPECT_FALSE(SwpPrefetchModel::ConditionHolds(costs, m, d - 1));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelPropertyTest,
                         ::testing::Range(1, 40));

}  // namespace
}  // namespace model
}  // namespace hashjoin
