// Rule-level fixtures for tools/hjlint: each known-bad snippet must
// fire exactly its rule, the idiomatic kernels must stay silent, and
// the real source tree must lint clean (the same invariant `ctest -L
// lint` enforces through the hjlint_tree test, checked here through the
// library API so a regression pinpoints the rule).

#include "hjlint/lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "hjlint/facts.h"

namespace hashjoin {
namespace hjlint {
namespace {

std::vector<Finding> Lint(const std::string& path, const std::string& src) {
  return LintFile(path, src, {});
}

bool HasRule(const std::vector<Finding>& fs, const std::string& rule) {
  return std::any_of(fs.begin(), fs.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

// --- spp-ring-power-of-two ------------------------------------------

TEST(HjlintRingTest, FlagsRingWithoutPowerOfTwoRounding) {
  // The classic bug: sizing the ring exactly (stages*D + 1 slots) makes
  // states[j & mask] alias wrong slots whenever the size is not a power
  // of two.
  auto fs = Lint("src/join/bad.h",
                "void Kernel() {\n"
                "  const uint64_t ring = kStages * d + 1;\n"
                "  const uint64_t mask = ring - 1;\n"
                "}\n");
  ASSERT_TRUE(HasRule(fs, "spp-ring-power-of-two"));
  EXPECT_EQ(fs[0].line, 2u);
}

TEST(HjlintRingTest, FlagsRingWithoutPlusOneSlack) {
  auto fs = Lint("src/join/bad.h",
                "  const uint64_t ring = NextPowerOfTwo(kStages * d);\n");
  EXPECT_TRUE(HasRule(fs, "spp-ring-power-of-two"));
}

TEST(HjlintRingTest, FlagsMaskThatIsNotRingMinusOne) {
  auto fs = Lint("src/join/bad.h",
                "  const uint64_t ring = NextPowerOfTwo(kStages * d + 1);\n"
                "  const uint64_t mask = ring;\n");
  ASSERT_TRUE(HasRule(fs, "spp-ring-power-of-two"));
  EXPECT_EQ(fs[0].line, 2u);
}

TEST(HjlintRingTest, AcceptsTheProjectIdiom) {
  auto fs = Lint("src/join/good.h",
                "  const uint64_t ring = NextPowerOfTwo(kStages * d + 1);\n"
                "  const uint64_t mask = ring - 1;\n"
                "  std::vector<ProbeState> states(ring);\n");
  EXPECT_TRUE(fs.empty());
}

TEST(HjlintRingTest, IgnoresComparisonsAndComments) {
  auto fs = Lint("src/join/good.h",
                "  // ring = whatever, this is prose\n"
                "  if (ring == 8) { }\n");
  EXPECT_TRUE(fs.empty());
}

TEST(HjlintRingTest, ExemptsCoroutineChains) {
  // Inside a co_await function the in-flight state lives in coroutine
  // frames; a `ring` there is round-robin scheduler bookkeeping, never
  // the §5.3 bit-masked state ring, so the sizing idiom does not apply.
  auto fs = Lint("src/join/coro.h",
                "KernelCoro Chain(State& st, uint32_t width) {\n"
                "  uint32_t ring = width;\n"
                "  co_await KernelCoro::NextStage{};\n"
                "  use(ring);\n"
                "}\n");
  EXPECT_TRUE(fs.empty());
}

// --- prefetch-stage-discipline --------------------------------------

TEST(HjlintPrefetchTest, FlagsDerefInSameStage) {
  // Prefetch immediately followed by the dereference: the miss has no
  // work to hide behind (the §3 pointer-chasing anti-pattern).
  auto fs = Lint("src/join/bad.h",
                "inline void Stage1(State& st) {\n"
                "  mm.Prefetch(st.bucket, sizeof(BucketHeader));\n"
                "  uint32_t n = st.bucket->count;\n"
                "}\n");
  ASSERT_TRUE(HasRule(fs, "prefetch-stage-discipline"));
  EXPECT_EQ(fs[0].line, 3u);
}

TEST(HjlintPrefetchTest, FlagsBuiltinPrefetchDeref) {
  auto fs = Lint("src/join/bad.h",
                "void F(Node* p) {\n"
                "  __builtin_prefetch(p, 0, 3);\n"
                "  use(*p);\n"
                "}\n");
  EXPECT_TRUE(HasRule(fs, "prefetch-stage-discipline"));
}

TEST(HjlintPrefetchTest, AcceptsPrefetchConsumedInLaterStage) {
  // The project idiom: stage k prefetches, the *next function* (stage
  // k+1, a separate top-level definition) dereferences.
  auto fs = Lint("src/join/good.h",
                "inline void Stage1(State& st) {\n"
                "  mm.Prefetch(st.bucket, sizeof(BucketHeader));\n"
                "}\n"
                "inline void Stage2(State& st) {\n"
                "  uint32_t n = st.bucket->count;\n"
                "}\n");
  EXPECT_TRUE(fs.empty());
}

TEST(HjlintPrefetchTest, AcceptsCoAwaitAsStageBoundary) {
  // The coroutine idiom: prefetch, suspend, dereference after resuming —
  // the co_await is the stage boundary, other chains' work hides the
  // miss while this one is suspended.
  auto fs = Lint("src/join/coro_good.h",
                "KernelCoro Chain(Ctx& ctx, State& st) {\n"
                "  mm.Prefetch(st.bucket, sizeof(BucketHeader));\n"
                "  co_await KernelCoro::NextStage{};\n"
                "  uint32_t n = st.bucket->count;\n"
                "}\n");
  EXPECT_TRUE(fs.empty());
}

TEST(HjlintPrefetchTest, FlagsCoroutineDerefBeforeSuspending) {
  // Known-bad coroutine: dereferencing the prefetched address before
  // the next co_await is the same just-in-time anti-pattern — the chain
  // never suspended, so nothing overlapped the miss.
  auto fs = Lint("src/join/coro_bad.h",
                "KernelCoro Chain(Ctx& ctx, State& st) {\n"
                "  mm.Prefetch(st.bucket, sizeof(BucketHeader));\n"
                "  uint32_t n = st.bucket->count;\n"
                "  co_await KernelCoro::NextStage{};\n"
                "}\n");
  EXPECT_TRUE(HasRule(fs, "prefetch-stage-discipline"));
}

TEST(HjlintPrefetchTest, IgnoresDeclarationsAndRanges) {
  auto fs = Lint("src/mem/prefetch.h",
                "inline void PrefetchRead(const void* addr) {\n"
                "  __builtin_prefetch(addr, 0, 3);\n"
                "}\n"
                "inline void PrefetchRange(const void* addr, size_t n) {\n"
                "  const uint8_t* p = (const uint8_t*)addr;\n"
                "  for (; p < end; p += 64) PrefetchRead(p);\n"
                "}\n");
  EXPECT_TRUE(fs.empty());
}

// --- dropped-status --------------------------------------------------

TEST(HjlintDroppedStatusTest, FlagsBareFlushWrites) {
  auto fs = Lint("src/join/bad.cc",
                "void F(BufferManager& bm) {\n"
                "  bm.FlushWrites();\n"
                "}\n");
  ASSERT_TRUE(HasRule(fs, "dropped-status"));
  EXPECT_EQ(fs[0].line, 2u);
}

TEST(HjlintDroppedStatusTest, FlagsBareNextPageThroughPointer) {
  auto fs = Lint("src/join/bad.cc",
                "void F(Scanner* scan) {\n"
                "  scan->NextPage(&page);\n"
                "}\n");
  EXPECT_TRUE(HasRule(fs, "dropped-status"));
}

TEST(HjlintDroppedStatusTest, AcceptsConsumedStatus) {
  auto fs = Lint("src/join/good.cc",
                "Status F(BufferManager& bm, Scanner& scan) {\n"
                "  Status st = bm.FlushWrites();\n"
                "  HJ_RETURN_IF_ERROR(scan.NextPage(&page));\n"
                "  if (!bm.FlushWrites().ok()) return st;\n"
                "  return bm.FlushWrites();\n"
                "}\n");
  EXPECT_TRUE(fs.empty());
}

TEST(HjlintDroppedStatusTest, AcceptsVoidWritePageAsync) {
  // WritePageAsync returns void by design (errors surface at
  // FlushWrites); only the exact Status-returning names are watched.
  auto fs = Lint("src/join/good.cc",
                "void F(BufferManager& bm) {\n"
                "  bm.WritePageAsync(file, p, page.data());\n"
                "}\n");
  EXPECT_TRUE(fs.empty());
}

// --- raw-mutex-primitive ---------------------------------------------

TEST(HjlintRawMutexTest, FlagsStdMutexMemberUnderSrc) {
  auto fs = Lint("src/sched/bad.h",
                "class C {\n"
                "  std::mutex mu_;\n"
                "  std::condition_variable cv_;\n"
                "};\n");
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_EQ(fs[0].rule, "raw-mutex-primitive");
  EXPECT_EQ(fs[0].line, 2u);
  EXPECT_EQ(fs[1].line, 3u);
}

TEST(HjlintRawMutexTest, FlagsRaiiHelpersToo) {
  auto fs = Lint("src/storage/bad.cc",
                "void F() { std::lock_guard<std::mutex> l(mu_); }\n");
  EXPECT_TRUE(HasRule(fs, "raw-mutex-primitive"));
}

TEST(HjlintRawMutexTest, ExemptsTheWrapperItself) {
  auto fs = Lint("src/util/mutex.h", "  std::mutex mu_;\n");
  EXPECT_TRUE(fs.empty());
}

TEST(HjlintRawMutexTest, IgnoresFilesOutsideSrc) {
  // Tests and benches may use raw primitives (e.g. to provoke races on
  // purpose); the annotated layer is mandatory for src/ only.
  auto fs = Lint("tests/sched_test.cc", "  std::mutex mu;\n");
  EXPECT_TRUE(fs.empty());
}

// --- recovery-ledger-discipline --------------------------------------

TEST(HjlintRecoveryLedgerTest, FlagsActionWithoutRecord) {
  // A ladder action with no RecordDegrade nearby: the degradation
  // happens but the DiskJoinRecovery ledger never learns why.
  auto fs = Lint("src/join/bad.cc",
                "Status J(FileId build, FileId probe) {\n"
                "  ReverseRoles(&build, &probe);\n"
                "  return JoinInMemory(build, probe);\n"
                "}\n");
  ASSERT_TRUE(HasRule(fs, "recovery-ledger-discipline"));
  EXPECT_EQ(fs[0].line, 2u);
}

TEST(HjlintRecoveryLedgerTest, FlagsDoubleRecordForOneAction) {
  // Two records for one action: matching is one-to-one, so the second
  // RecordDegrade is an orphan inflating the ledger.
  auto fs = Lint("src/join/bad.cc",
                "Status J(FileId build, FileId probe) {\n"
                "  RecordDegrade(DegradeReason::kRoleReversal);\n"
                "  RecordDegrade(DegradeReason::kRoleReversal);\n"
                "  ReverseRoles(&build, &probe);\n"
                "  return JoinInMemory(build, probe);\n"
                "}\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "recovery-ledger-discipline");
  EXPECT_NE(fs[0].message.find("never happened"), std::string::npos);
}

TEST(HjlintRecoveryLedgerTest, FlagsOrphanRecord) {
  auto fs = Lint("src/join/bad.cc",
                "Status J(FileId build, FileId probe) {\n"
                "  RecordDegrade(DegradeReason::kChunkedBuild);\n"
                "  return JoinInMemory(build, probe);\n"
                "}\n");
  ASSERT_TRUE(HasRule(fs, "recovery-ledger-discipline"));
  EXPECT_EQ(fs[0].line, 2u);
}

TEST(HjlintRecoveryLedgerTest, FlagsRecordTooFarFromAction) {
  // The record exists but outside the +/-3 line window — both sides
  // flag, so the pairing stays visually adjacent in real code.
  auto fs = Lint("src/join/bad.cc",
                "Status J(FileId build, FileId probe) {\n"
                "  RecordDegrade(DegradeReason::kChunkedBuild);\n"
                "  int a = 1;\n"
                "  int b = 2;\n"
                "  int c = 3;\n"
                "  int d = 4;\n"
                "  return JoinChunked(build, probe, matches);\n"
                "}\n");
  EXPECT_EQ(fs.size(), 2u);
}

TEST(HjlintRecoveryLedgerTest, AcceptsAdjacentPairsAndDefinitions) {
  // The project idiom: record immediately before the action; `return
  // Action(...)` is a call site, `Class::Action(` / `Status Action(`
  // are not. The adjacent BNL/chunked cluster pairs greedily.
  auto fs = Lint("src/join/good.cc",
                "Status DiskGraceJoin::SpillVictim(PartitionResidency* res) {\n"
                "  return Status::OK();\n"
                "}\n"
                "Status J(FileId build, FileId probe) {\n"
                "  RecordDegrade(DegradeReason::kVictimSpill);\n"
                "  HJ_RETURN_IF_ERROR(SpillVictim(&res));\n"
                "  if (one_key) {\n"
                "    RecordDegrade(DegradeReason::kBlockNestedLoop);\n"
                "    return JoinBlockNestedLoop(build, probe, matches);\n"
                "  }\n"
                "  RecordDegrade(DegradeReason::kChunkedBuild);\n"
                "  return JoinChunked(build, probe, matches);\n"
                "}\n");
  EXPECT_TRUE(fs.empty());
}

TEST(HjlintRecoveryLedgerTest, IgnoresFilesOutsideSrc) {
  // Tests drive the ladder directly without touching the ledger.
  auto fs = Lint("tests/grace_disk_test.cc",
                "  ReverseRoles(&build, &probe);\n");
  EXPECT_TRUE(fs.empty());
}

// --- cache-pin-discipline --------------------------------------------

TEST(HjlintCachePinTest, FlagsPinWithoutUnpin) {
  // The leaked pin: the entry can never be evicted, so a broker revoke
  // shrinks the grant on paper while the bytes stay resident.
  auto fs = Lint("src/join/bad.cc",
                "void Probe(cache::HashTableCache* c, const CacheKey& k) {\n"
                "  const CachedTable* e = c->Pin(k);\n"
                "  if (e != nullptr) RunProbe(*e->table);\n"
                "}\n");
  ASSERT_TRUE(HasRule(fs, "cache-pin-discipline"));
  EXPECT_EQ(fs[0].line, 2u);
}

TEST(HjlintCachePinTest, FlagsSecondPinWhenOnlyOneUnpin) {
  // Two pins, one release: matching is one-to-one, the second Pin is
  // the leak and carries the finding.
  auto fs = Lint("src/join/bad.cc",
                "void F(cache::HashTableCache* c, CacheKey a, CacheKey b) {\n"
                "  const CachedTable* ea = c->Pin(a);\n"
                "  const CachedTable* eb = c->Pin(b);\n"
                "  c->Unpin(ea);\n"
                "}\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "cache-pin-discipline");
  EXPECT_EQ(fs[0].line, 3u);
}

TEST(HjlintCachePinTest, AcceptsBalancedPinUnpin) {
  auto fs = Lint("src/join/good.cc",
                "void Probe(cache::HashTableCache* c, const CacheKey& k) {\n"
                "  const CachedTable* e = c->Pin(k);\n"
                "  if (e != nullptr) {\n"
                "    RunProbe(*e->table);\n"
                "    c->Unpin(e);\n"
                "  }\n"
                "}\n");
  EXPECT_TRUE(fs.empty());
}

TEST(HjlintCachePinTest, AcceptsRaiiGuardAndAcquire) {
  // The project idiom: Acquire() returns the PinnedTable guard, and a
  // raw Pin adopted by a guard on the same line is guard-managed.
  auto fs = Lint("src/join/good.cc",
                "void Probe(cache::HashTableCache* c, const CacheKey& k) {\n"
                "  cache::PinnedTable pin = c->Acquire(k);\n"
                "  if (pin) RunProbe(pin.table());\n"
                "}\n"
                "void Adopt(cache::HashTableCache* c, const CacheKey& k) {\n"
                "  cache::PinnedTable pin(c, c->Pin(k));\n"
                "}\n");
  EXPECT_TRUE(fs.empty());
}

TEST(HjlintCachePinTest, IgnoresDeclarationsAndExemptsTheCacheItself) {
  // `const CachedTable* Pin(` is a declaration, not a call; and the
  // defining files hold one side of the pair each by design.
  auto fs = Lint("src/join/good.h",
                "class Facade {\n"
                "  const CachedTable* Pin(const CacheKey& key);\n"
                "  void Unpin(const CachedTable* entry);\n"
                "};\n");
  EXPECT_TRUE(fs.empty());
  auto exempt = Lint("src/cache/hash_table_cache.cc",
                    "PinnedTable HashTableCache::Acquire(const CacheKey& k) "
                    "{\n"
                    "  return PinnedTable(this, Pin(k));\n"
                    "}\n");
  EXPECT_TRUE(exempt.empty());
}

// --- bench-schema-sync -----------------------------------------------

TEST(HjlintBenchSchemaTest, FlagsKeyTheReporterNeverEmits) {
  auto fs = LintBenchSchema(
      "tools/bench_diff.cc",
      "  const JsonValue* v = rec.Find(\"wall_sconds\");\n",  // typo
      "src/perf/bench_reporter.cc",
      "  record.Set(\"wall_seconds\", std::move(w));\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "bench-schema-sync");
  EXPECT_NE(fs[0].message.find("wall_sconds"), std::string::npos);
}

TEST(HjlintBenchSchemaTest, ChecksEveryDottedPathComponent) {
  auto fs = LintBenchSchema(
      "tools/bench_diff.cc",
      "  const JsonValue* v = rec.FindPath(\"wall_seconds.median\");\n",
      "src/perf/bench_reporter.cc",
      "  obj.Set(\"wall_seconds\", JsonValue());\n");  // no "median"
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_NE(fs[0].message.find("median"), std::string::npos);
}

TEST(HjlintBenchSchemaTest, AcceptsKeysEmittedByBenchDrivers) {
  // Per-bench config keys ("scheme", "theta", ...) are Set() by the
  // drivers, not the reporter envelope; the extra-emitter contents
  // stand in for bench/*.cc here.
  auto fs = LintBenchSchema(
      "tools/bench_diff.cc",
      "  const JsonValue* s = config->Find(\"scheme\");\n",
      "src/perf/bench_reporter.cc", "  r.Set(\"name\", n);\n",
      {"  config.Set(\"scheme\", SchemeName(scheme));\n"});
  EXPECT_TRUE(fs.empty());
}

TEST(HjlintBenchSchemaTest, AcceptsMatchingSchemas) {
  auto fs = LintBenchSchema(
      "tools/bench_diff.cc",
      "  rec.Find(\"name\");\n  rec.FindPath(\"wall_seconds.median\");\n",
      "src/perf/bench_reporter.cc",
      "  r.Set(\"name\", n);\n  w.Set(\"median\", m);\n"
      "  r.Set(\"wall_seconds\", std::move(w));\n");
  EXPECT_TRUE(fs.empty());
}

// --- JSON report and the real tree -----------------------------------

TEST(HjlintReportTest, JsonShapeMatchesContract) {
  std::vector<Finding> fs = {
      {"dropped-status", "src/a.cc", 7, "discarded"}};
  JsonValue doc = FindingsToJson(fs);
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.Find("count")->AsInt(), 1);
  const JsonValue* arr = doc.Find("findings");
  ASSERT_TRUE(arr != nullptr && arr->is_array());
  EXPECT_EQ(arr->at(0).Find("rule")->AsString(), "dropped-status");
  EXPECT_EQ(arr->at(0).Find("file")->AsString(), "src/a.cc");
  EXPECT_EQ(arr->at(0).Find("line")->AsInt(), 7);
}

TEST(HjlintTreeTest, RealSourceTreeIsClean) {
  const std::string root = HJLINT_SOURCE_DIR;
  std::vector<Finding> fs = LintTree(
      {root + "/src", root + "/bench", root + "/tools", root + "/examples"},
      root, {});
  for (const Finding& f : fs) {
    ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message;
  }
}

TEST(HjlintTreeTest, RuleFilterRestrictsChecks) {
  // Only the requested rule runs: the raw-mutex fixture stays silent
  // when linting for dropped-status.
  auto fs = LintFile("src/sched/bad.h", "  std::mutex mu_;\n",
                     {"dropped-status"});
  EXPECT_TRUE(fs.empty());
}

// --- whole-program facts engine (hjlint v2) --------------------------

facts::FactsDb BuildDb(
    const std::vector<std::pair<std::string, std::string>>& files) {
  facts::FactsDb db;
  for (const auto& [path, src] : files) {
    facts::CollectDecls(path, src, &db.decls);
  }
  for (const auto& [path, src] : files) {
    facts::ExtractFacts(path, src, &db);
  }
  return db;
}

bool AnyMessageContains(const std::vector<Finding>& fs,
                        const std::string& needle) {
  return std::any_of(fs.begin(), fs.end(), [&](const Finding& f) {
    return f.message.find(needle) != std::string::npos;
  });
}

// --- lock-order-cycle ------------------------------------------------

const char kPairHeader[] =
    "class Pair {\n"
    " public:\n"
    "  void Forward();\n"
    "  void Backward();\n"
    " private:\n"
    "  Mutex ma_;\n"
    "  Mutex mb_;\n"
    "};\n";

TEST(HjlintLockOrderTest, SeededInversionIsDetectedAsCycle) {
  // The acceptance fixture: one function locks ma_ then mb_, another
  // locks mb_ then ma_ — a textbook ABBA deadlock.
  auto db = BuildDb({{"src/pair.h", kPairHeader},
                     {"src/pair.cc",
                      "void Pair::Forward() {\n"
                      "  MutexLock a(ma_);\n"
                      "  MutexLock b(mb_);\n"
                      "}\n"
                      "void Pair::Backward() {\n"
                      "  MutexLock b(mb_);\n"
                      "  MutexLock a(ma_);\n"
                      "}\n"}});
  facts::Manifest manifest = facts::ParseManifest(
      "Pair::ma_ -> Pair::mb_\nPair::mb_ -> Pair::ma_\n");
  auto fs = facts::CheckLockOrder(db, manifest, "lock_order.txt", true);
  ASSERT_TRUE(HasRule(fs, "lock-order-cycle"));
  EXPECT_TRUE(AnyMessageContains(fs, "cycle"));
  EXPECT_TRUE(AnyMessageContains(fs, "Pair::ma_"));
  EXPECT_TRUE(AnyMessageContains(fs, "Pair::mb_"));
}

TEST(HjlintLockOrderTest, ConsistentDeclaredOrderIsClean) {
  auto db = BuildDb({{"src/pair.h", kPairHeader},
                     {"src/pair.cc",
                      "void Pair::Forward() {\n"
                      "  MutexLock a(ma_);\n"
                      "  MutexLock b(mb_);\n"
                      "}\n"
                      "void Pair::Backward() {\n"
                      "  MutexLock a(ma_);\n"
                      "  MutexLock b(mb_);\n"
                      "}\n"}});
  facts::Manifest manifest =
      facts::ParseManifest("Pair::ma_ -> Pair::mb_\n");
  auto fs = facts::CheckLockOrder(db, manifest, "lock_order.txt", true);
  for (const Finding& f : fs) {
    ADD_FAILURE() << f.file << ":" << f.line << ": " << f.message;
  }
}

TEST(HjlintLockOrderTest, ObservedEdgeMissingFromManifestIsFlagged) {
  auto db = BuildDb({{"src/pair.h", kPairHeader},
                     {"src/pair.cc",
                      "void Pair::Forward() {\n"
                      "  MutexLock a(ma_);\n"
                      "  MutexLock b(mb_);\n"
                      "}\n"}});
  auto fs = facts::CheckLockOrder(db, facts::ParseManifest(""),
                                  "lock_order.txt", true);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "lock-order-cycle");
  EXPECT_EQ(fs[0].file, "src/pair.cc");
  EXPECT_EQ(fs[0].line, 3u);
  EXPECT_TRUE(AnyMessageContains(fs, "not declared"));
}

TEST(HjlintLockOrderTest, StaleManifestEntryIsFlagged) {
  auto db = BuildDb({{"src/pair.h", kPairHeader}});  // no acquisitions
  facts::Manifest manifest =
      facts::ParseManifest("# header\nPair::ma_ -> Pair::mb_\n");
  auto fs = facts::CheckLockOrder(db, manifest, "lock_order.txt", true);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].file, "lock_order.txt");
  EXPECT_EQ(fs[0].line, 2u);
  EXPECT_TRUE(AnyMessageContains(fs, "stale"));
}

TEST(HjlintLockOrderTest, RequiresAnnotationDerivesEdge) {
  // InnerLocked never spells the outer lock — HJ_REQUIRES(ma_) supplies
  // the context, so acquiring mb_ inside still yields ma_ -> mb_.
  auto db = BuildDb({{"src/ann.h",
                      "class Ann {\n"
                      " public:\n"
                      "  void InnerLocked() HJ_REQUIRES(ma_);\n"
                      " private:\n"
                      "  Mutex ma_;\n"
                      "  Mutex mb_;\n"
                      "};\n"},
                     {"src/ann.cc",
                      "void Ann::InnerLocked() {\n"
                      "  MutexLock b(mb_);\n"
                      "}\n"}});
  auto edges = facts::CollectLockEdges(db);
  bool found = std::any_of(
      edges.begin(), edges.end(), [](const facts::ObservedEdge& e) {
        return e.outer == "Ann::ma_" && e.inner == "Ann::mb_" &&
               e.via == "HJ_REQUIRES";
      });
  EXPECT_TRUE(found);
  auto fs = facts::CheckLockOrder(
      db, facts::ParseManifest("Ann::ma_ -> Ann::mb_\n"),
      "lock_order.txt", true);
  EXPECT_TRUE(fs.empty());
}

TEST(HjlintLockOrderTest, ReacquiringHeldMutexIsSelfDeadlock) {
  auto db = BuildDb({{"src/selfy.h",
                      "class Selfy {\n"
                      " public:\n"
                      "  void Relock() HJ_REQUIRES(mu_);\n"
                      " private:\n"
                      "  Mutex mu_;\n"
                      "};\n"},
                     {"src/selfy.cc",
                      "void Selfy::Relock() {\n"
                      "  MutexLock l(mu_);\n"
                      "}\n"}});
  auto fs = facts::CheckLockOrder(db, facts::ParseManifest(""),
                                  "lock_order.txt", true);
  ASSERT_TRUE(HasRule(fs, "lock-order-cycle"));
  EXPECT_TRUE(AnyMessageContains(fs, "Selfy::mu_"));
}

// --- callback-under-lock ---------------------------------------------

const char kNotifierHeader[] =
    "class Notifier {\n"
    " public:\n"
    "  void Fire();\n"
    " private:\n"
    "  Mutex mu_;\n"
    "  std::function<void()> cb_;\n"
    "};\n";

TEST(HjlintCallbackTest, DirectInvocationUnderLockIsFlagged) {
  auto db = BuildDb({{"src/notifier.h", kNotifierHeader},
                     {"src/notifier.cc",
                      "void Notifier::Fire() {\n"
                      "  MutexLock lock(mu_);\n"
                      "  if (cb_) cb_();\n"
                      "}\n"}});
  auto fs = facts::CheckCallbackUnderLock(db);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "callback-under-lock");
  EXPECT_EQ(fs[0].file, "src/notifier.cc");
  EXPECT_EQ(fs[0].line, 3u);
  EXPECT_TRUE(AnyMessageContains(fs, "Notifier::mu_"));
}

TEST(HjlintCallbackTest, SnapshotInvokedOutsideLockIsClean) {
  // The idiom the rule is designed to push callers toward: copy the
  // member under the lock, leave the scope, invoke the copy.
  auto db = BuildDb({{"src/notifier.h", kNotifierHeader},
                     {"src/notifier.cc",
                      "void Notifier::Fire() {\n"
                      "  std::function<void()> fn;\n"
                      "  {\n"
                      "    MutexLock lock(mu_);\n"
                      "    fn = cb_;\n"
                      "  }\n"
                      "  if (fn) fn();\n"
                      "}\n"}});
  auto fs = facts::CheckCallbackUnderLock(db);
  EXPECT_TRUE(fs.empty());
}

TEST(HjlintCallbackTest, SnapshotInvokedInsideLockIsStillFlagged) {
  auto db = BuildDb({{"src/notifier.h", kNotifierHeader},
                     {"src/notifier.cc",
                      "void Notifier::Fire() {\n"
                      "  std::function<void()> fn;\n"
                      "  MutexLock lock(mu_);\n"
                      "  fn = cb_;\n"
                      "  fn();\n"
                      "}\n"}});
  auto fs = facts::CheckCallbackUnderLock(db);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].line, 5u);
}

TEST(HjlintCallbackTest, RequiresAnnotationCountsAsHeld) {
  // No lexical MutexLock in the body — the HJ_REQUIRES contract says
  // the caller already holds mu_, so invoking the member still runs a
  // foreign closure under our lock.
  auto db = BuildDb({{"src/hooked.h",
                      "class Hooked {\n"
                      " public:\n"
                      "  void FireLocked() HJ_REQUIRES(mu_);\n"
                      " private:\n"
                      "  Mutex mu_;\n"
                      "  std::function<void()> hook_;\n"
                      "};\n"},
                     {"src/hooked.cc",
                      "void Hooked::FireLocked() {\n"
                      "  hook_();\n"
                      "}\n"}});
  auto fs = facts::CheckCallbackUnderLock(db);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(AnyMessageContains(fs, "Hooked::mu_"));
}

// --- atomic-handoff-discipline ---------------------------------------

TEST(HjlintAtomicTest, DefaultedOpsOnHandoffFieldAreFlagged) {
  // depth is published with a release store, so it is a handoff field:
  // the defaulted .load() and the bare assignment are both seq-cst by
  // default and must spell their order.
  auto db = BuildDb({{"src/chan.h",
                      "struct Chan {\n"
                      "  std::atomic<uint32_t> depth{0};\n"
                      "};\n"},
                     {"src/chan.cc",
                      "void Pub(Chan* c, uint32_t v) {\n"
                      "  c->depth.store(v, std::memory_order_release);\n"
                      "}\n"
                      "uint32_t SubGood(Chan* c) {\n"
                      "  return c->depth.load(std::memory_order_acquire);\n"
                      "}\n"
                      "uint32_t SubBad(Chan* c) {\n"
                      "  return c->depth.load();\n"
                      "}\n"
                      "void Reset(Chan* c) {\n"
                      "  c->depth = 0;\n"
                      "}\n"}});
  auto fs = facts::CheckAtomicHandoff(db);
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_EQ(fs[0].rule, "atomic-handoff-discipline");
  EXPECT_TRUE(AnyMessageContains(fs, "Chan::depth"));
  bool bad_load = std::any_of(fs.begin(), fs.end(), [](const Finding& f) {
    return f.line == 8 && f.file == "src/chan.cc";
  });
  bool bad_assign = std::any_of(fs.begin(), fs.end(), [](const Finding& f) {
    return f.line == 11 && f.file == "src/chan.cc";
  });
  EXPECT_TRUE(bad_load);
  EXPECT_TRUE(bad_assign);
}

TEST(HjlintAtomicTest, ReleaseStoreWithoutAcquireLoadIsFlagged) {
  auto db = BuildDb({{"src/flag.h",
                      "struct Flag {\n"
                      "  std::atomic<bool> ready{false};\n"
                      "};\n"},
                     {"src/flag.cc",
                      "void Set(Flag* f) {\n"
                      "  f->ready.store(true, std::memory_order_release);\n"
                      "}\n"
                      "bool Peek(Flag* f) {\n"
                      "  return f->ready.load(std::memory_order_relaxed);\n"
                      "}\n"}});
  auto fs = facts::CheckAtomicHandoff(db);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(AnyMessageContains(fs, "Flag::ready"));
  EXPECT_TRUE(AnyMessageContains(fs, "acquire"));
}

TEST(HjlintAtomicTest, AcquireLoadWithoutReleaseStoreIsFlagged) {
  auto db = BuildDb({{"src/sig.h",
                      "struct Sig {\n"
                      "  std::atomic<int> seq{0};\n"
                      "};\n"},
                     {"src/sig.cc",
                      "int Wait(Sig* g) {\n"
                      "  return g->seq.load(std::memory_order_acquire);\n"
                      "}\n"
                      "void Post(Sig* g) {\n"
                      "  g->seq.store(1, std::memory_order_relaxed);\n"
                      "}\n"}});
  auto fs = facts::CheckAtomicHandoff(db);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_TRUE(AnyMessageContains(fs, "Sig::seq"));
  EXPECT_TRUE(AnyMessageContains(fs, "release"));
}

TEST(HjlintAtomicTest, ExplicitPairWithRelaxedStatsIsClean) {
  // Release/acquire pairing with an explicitly-relaxed diagnostic load
  // is the disciplined shape — no findings.
  auto db = BuildDb({{"src/tune.h",
                      "struct Tune {\n"
                      "  std::atomic<uint32_t> group{0};\n"
                      "};\n"},
                     {"src/tune.cc",
                      "void Publish(Tune* t, uint32_t v) {\n"
                      "  t->group.store(v, std::memory_order_release);\n"
                      "}\n"
                      "uint32_t Snapshot(Tune* t) {\n"
                      "  return t->group.load(std::memory_order_acquire);\n"
                      "}\n"
                      "uint32_t Stat(Tune* t) {\n"
                      "  return t->group.load(std::memory_order_relaxed);\n"
                      "}\n"}});
  auto fs = facts::CheckAtomicHandoff(db);
  EXPECT_TRUE(fs.empty());
}

TEST(HjlintAtomicTest, NonHandoffCounterIsIgnored) {
  // No release/acquire traffic anywhere: a plain stats counter keeps
  // its defaulted orders without complaint.
  auto db = BuildDb({{"src/ctr.h",
                      "struct Ctr {\n"
                      "  std::atomic<uint64_t> hits{0};\n"
                      "};\n"},
                     {"src/ctr.cc",
                      "void Bump(Ctr* c) {\n"
                      "  c->hits.fetch_add(1);\n"
                      "}\n"
                      "uint64_t Total(Ctr* c) {\n"
                      "  return c->hits.load();\n"
                      "}\n"}});
  auto fs = facts::CheckAtomicHandoff(db);
  EXPECT_TRUE(fs.empty());
}

// --- harvested facts from the real tree ------------------------------

TEST(HjlintFactsTest, BrokerGraphContainsDocumentedListenerEdge) {
  // Regression anchor for the fact extractor: MemoryBroker::Acquire
  // nests a victim grant's listener_mu_ inside the broker's mu_; the
  // harvested acquisition graph must contain that edge (it is the
  // first entry of tools/hjlint/lock_order.txt).
  const std::string root = HJLINT_SOURCE_DIR;
  auto slurp = [](const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  std::vector<std::pair<std::string, std::string>> files = {
      {"src/sched/memory_broker.h",
       slurp(root + "/src/sched/memory_broker.h")},
      {"src/sched/memory_broker.cc",
       slurp(root + "/src/sched/memory_broker.cc")}};
  for (const auto& [path, src] : files) {
    ASSERT_FALSE(src.empty()) << "could not read " << path;
  }
  auto db = BuildDb(files);
  auto edges = facts::CollectLockEdges(db);
  bool found = std::any_of(
      edges.begin(), edges.end(), [](const facts::ObservedEdge& e) {
        return e.outer == "MemoryBroker::mu_" &&
               e.inner == "MemoryGrant::listener_mu_";
      });
  EXPECT_TRUE(found)
      << "MemoryBroker::mu_ -> MemoryGrant::listener_mu_ not harvested";
}

// --- baseline suppression --------------------------------------------

TEST(HjlintBaselineTest, TrackedFindingIsSuppressedAcrossLineDrift) {
  // Baseline entries key on rule/file/message, not line numbers, so a
  // finding that merely moved stays suppressed.
  std::vector<Finding> tracked = {
      {"lock-order-cycle", "src/a.cc", 10, "edge A -> B is not declared"}};
  std::string base = FormatBaseline(tracked);
  std::vector<Finding> later = {
      {"lock-order-cycle", "src/a.cc", 42, "edge A -> B is not declared"}};
  BaselineApplied ap = ApplyBaseline(later, base, "baseline.txt");
  EXPECT_TRUE(ap.active.empty());
  EXPECT_TRUE(ap.stale.empty());
  ASSERT_EQ(ap.suppressed.size(), 1u);
  EXPECT_EQ(ap.suppressed[0].line, 42u);
}

TEST(HjlintBaselineTest, NewFindingStaysActiveAndPaidDebtGoesStale) {
  std::vector<Finding> tracked = {{"r1", "src/a.cc", 1, "old debt"}};
  std::string base = FormatBaseline(tracked);
  std::vector<Finding> now = {{"r2", "src/b.cc", 2, "new debt"}};
  BaselineApplied ap = ApplyBaseline(now, base, "baseline.txt");
  ASSERT_EQ(ap.active.size(), 1u);
  EXPECT_EQ(ap.active[0].rule, "r2");
  ASSERT_EQ(ap.stale.size(), 1u);
  EXPECT_EQ(ap.stale[0].rule, "stale-baseline");
  EXPECT_EQ(ap.stale[0].file, "baseline.txt");
  EXPECT_TRUE(ap.stale[0].message.find("r1") != std::string::npos);
}

// --- repo-root-relative finding paths --------------------------------

TEST(HjlintTreeTest, FindingPathsAreRootRelative) {
  namespace stdfs = std::filesystem;
  stdfs::path root = stdfs::temp_directory_path() / "hjlint_relpath_test";
  stdfs::remove_all(root);
  stdfs::create_directories(root / "src");
  {
    std::ofstream out(root / "src" / "bad.h");
    out << "class C {\n  std::mutex mu_;\n};\n";
  }
  auto fs = LintTree({(root / "src").string()}, root.string(),
                     {"raw-mutex-primitive"});
  stdfs::remove_all(root);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].file, "src/bad.h");
}

}  // namespace
}  // namespace hjlint
}  // namespace hashjoin
