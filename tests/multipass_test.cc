#include <cstring>
#include <map>

#include "gtest/gtest.h"
#include "join/grace.h"
#include "mem/memory_model.h"
#include "workload/generator.h"

namespace hashjoin {
namespace {

uint32_t KeyOf(const uint8_t* t) {
  uint32_t k;
  std::memcpy(&k, t, 4);
  return k;
}

TEST(PartitionPlanTest, SinglePassWhenUnderCap) {
  PartitionPlan p = PlanPartitionPasses(100, 0);
  EXPECT_FALSE(p.MultiPass());
  EXPECT_EQ(p.FinalParts(), 100u);
  p = PlanPartitionPasses(100, 200);
  EXPECT_FALSE(p.MultiPass());
  EXPECT_EQ(p.FinalParts(), 100u);
}

TEST(PartitionPlanTest, TwoPassesWhenOverCap) {
  PartitionPlan p = PlanPartitionPasses(1000, 100);
  EXPECT_TRUE(p.MultiPass());
  EXPECT_LE(p.pass1, 100u);
  EXPECT_LE(p.pass2, 100u);
  EXPECT_GE(p.FinalParts(), 1000u);
}

TEST(PartitionPlanTest, ZeroWantedIsOnePartition) {
  PartitionPlan p = PlanPartitionPasses(0, 10);
  EXPECT_EQ(p.FinalParts(), 1u);
}

class MultiPassPartitionTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(MultiPassPartitionTest, FinalPartitionsConsistentAndComplete) {
  Relation input = GenerateSourceRelation(20000, 20, 29);
  GraceConfig config;
  config.partition_scheme = GetParam();
  config.combined_partition = false;
  config.page_size = 1024;
  PartitionPlan plan = PlanPartitionPasses(35, 6);  // 6x6 = 36 parts
  ASSERT_TRUE(plan.MultiPass());

  RealMemory mm;
  std::vector<Relation> parts;
  PartitionWithPlan(mm, config, input, plan, &parts);
  ASSERT_EQ(parts.size(), plan.FinalParts());

  uint64_t total = 0;
  std::map<uint32_t, int> in_counts, out_counts;
  input.ForEachTuple(
      [&](const uint8_t* t, uint16_t, uint32_t) { in_counts[KeyOf(t)]++; });
  for (uint32_t p = 0; p < parts.size(); ++p) {
    uint32_t p1 = p / plan.pass2;
    uint32_t p2 = p % plan.pass2;
    parts[p].ForEachTuple([&](const uint8_t* t, uint16_t, uint32_t hash) {
      ASSERT_EQ(hash, HashKey32(KeyOf(t)));
      ASSERT_EQ(hash % plan.pass1, p1);
      ASSERT_EQ((hash / plan.pass1) % plan.pass2, p2);
      out_counts[KeyOf(t)]++;
      ++total;
    });
  }
  EXPECT_EQ(total, input.num_tuples());
  EXPECT_EQ(in_counts, out_counts);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, MultiPassPartitionTest,
                         ::testing::Values(Scheme::kBaseline, Scheme::kSimple,
                                           Scheme::kGroup, Scheme::kSwp),
                         [](const auto& info) {
                           return SchemeName(info.param);
                         });

TEST(MultiPassGraceTest, JoinCorrectUnderPartitionCap) {
  WorkloadSpec spec;
  spec.num_build_tuples = 30000;
  spec.tuple_size = 16;
  spec.matches_per_build = 2.0;
  JoinWorkload w = GenerateJoinWorkload(spec);
  GraceConfig config;
  config.memory_budget = 48 * 1024;  // forces ~40 partitions
  config.max_active_partitions = 8;  // cap well below that (40 <= 8^2)
  config.page_size = 2048;
  RealMemory mm;
  JoinResult r = GraceHashJoin(mm, w.build, w.probe, config, nullptr);
  EXPECT_EQ(r.output_tuples, w.expected_matches);
  EXPECT_GT(r.num_partitions, 8u);  // multi-pass actually engaged
}

TEST(MultiPassGraceTest, CapAboveNeedIsSinglePass) {
  WorkloadSpec spec;
  spec.num_build_tuples = 4000;
  spec.tuple_size = 16;
  JoinWorkload w = GenerateJoinWorkload(spec);
  GraceConfig config;
  config.memory_budget = 128 * 1024;
  config.max_active_partitions = 1000;
  config.page_size = 2048;
  RealMemory mm;
  JoinResult r = GraceHashJoin(mm, w.build, w.probe, config, nullptr);
  EXPECT_EQ(r.output_tuples, w.expected_matches);
}

}  // namespace
}  // namespace hashjoin
