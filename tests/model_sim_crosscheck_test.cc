// Cross-validation of the generalized models (§4.2/§5.1) against the
// memory-hierarchy simulator: a synthetic workload of N independent
// elements, each making k dependent memory references split by code
// stages (exactly Figure 3(c)'s structure), is executed through the
// simulator with the baseline, group-prefetching, and software-pipelined
// loop shapes, and the measured cycles are compared with the models'
// critical-path predictions.

#include <vector>

#include "gtest/gtest.h"
#include "mem/memory_model.h"
#include "model/cost_model.h"
#include "simcache/memory_sim.h"
#include "util/aligned.h"
#include "util/bitops.h"
#include "util/random.h"

namespace hashjoin {
namespace {

constexpr uint32_t kK = 3;        // dependent references per element
constexpr uint64_t kN = 4096;     // elements
constexpr uint32_t kLine = 64;

// A memory area per reference level, with a random permutation so the
// access stream has no spatial locality; every line is touched exactly
// once, so every reference is a cold miss — the model's assumption.
struct SyntheticWorkload {
  std::vector<AlignedBuffer<uint8_t>> areas;
  std::vector<std::vector<uint32_t>> perms;

  explicit SyntheticWorkload(uint64_t seed) {
    Rng rng(seed);
    for (uint32_t l = 0; l < kK; ++l) {
      areas.push_back(MakeAlignedBuffer<uint8_t>(kN * kLine, kLine));
      std::vector<uint32_t> perm(kN);
      for (uint32_t i = 0; i < kN; ++i) perm[i] = i;
      rng.Shuffle(&perm);
      perms.push_back(std::move(perm));
    }
  }

  const uint8_t* Addr(uint32_t level, uint64_t element) const {
    return areas[level].get() + uint64_t(perms[level][element]) * kLine;
  }
};

// Simulator config with TLB and branch effects disabled, isolating the
// cache/latency/bandwidth behaviour the models describe.
sim::SimConfig CrosscheckConfig() {
  sim::SimConfig cfg;
  cfg.dtlb_entries = 4096;
  cfg.tlb_miss_latency = 0;
  return cfg;
}

model::CodeCosts Costs() { return model::CodeCosts{{30, 12, 10, 25}}; }

uint64_t RunBaseline(const SyntheticWorkload& w, const sim::SimConfig& cfg) {
  sim::MemorySim sim(cfg);
  const auto costs = Costs();
  for (uint64_t i = 0; i < kN; ++i) {
    sim.Busy(costs.c[0]);
    for (uint32_t l = 0; l < kK; ++l) {
      sim.Access(w.Addr(l, i), 8, false);
      sim.Busy(costs.c[l + 1]);
    }
  }
  return sim.stats().TotalCycles();
}

uint64_t RunGroup(const SyntheticWorkload& w, const sim::SimConfig& cfg,
                  uint32_t group) {
  sim::MemorySim sim(cfg);
  const auto costs = Costs();
  for (uint64_t j = 0; j < kN; j += group) {
    uint64_t end = std::min(kN, j + group);
    // Stage 0: code 0 + prefetch m1 (the issue cost is charged by the
    // simulator's Prefetch).
    for (uint64_t i = j; i < end; ++i) {
      sim.Busy(costs.c[0]);
      sim.Prefetch(w.Addr(0, i), 8);
    }
    // Stages 1..k: visit m_l, run code l, prefetch m_{l+1}.
    for (uint32_t l = 0; l < kK; ++l) {
      for (uint64_t i = j; i < end; ++i) {
        sim.Access(w.Addr(l, i), 8, false);
        sim.Busy(costs.c[l + 1]);
        if (l + 1 < kK) sim.Prefetch(w.Addr(l + 1, i), 8);
      }
    }
  }
  return sim.stats().TotalCycles();
}

uint64_t RunSwp(const SyntheticWorkload& w, const sim::SimConfig& cfg,
                uint32_t d) {
  sim::MemorySim sim(cfg);
  const auto costs = Costs();
  uint64_t last = (kN - 1) + uint64_t(kK) * d;
  for (uint64_t j = 0; j <= last; ++j) {
    if (j < kN) {
      sim.Busy(costs.c[0]);
      sim.Prefetch(w.Addr(0, j), 8);
    }
    for (uint32_t l = 1; l <= kK; ++l) {
      uint64_t delay = uint64_t(l) * d;
      if (j < delay || j - delay >= kN) continue;
      uint64_t e = j - delay;
      sim.Access(w.Addr(l - 1, e), 8, false);
      sim.Busy(costs.c[l]);
      if (l < kK) sim.Prefetch(w.Addr(l, e), 8);
    }
  }
  return sim.stats().TotalCycles();
}

void ExpectWithin(uint64_t measured, uint64_t predicted, double rel_tol) {
  double lo = double(predicted) * (1.0 - rel_tol);
  double hi = double(predicted) * (1.0 + rel_tol);
  EXPECT_GE(double(measured), lo)
      << "measured " << measured << " vs predicted " << predicted;
  EXPECT_LE(double(measured), hi)
      << "measured " << measured << " vs predicted " << predicted;
}

TEST(ModelSimCrosscheck, BaselinePredictionTight) {
  SyntheticWorkload w(1);
  sim::SimConfig cfg = CrosscheckConfig();
  model::MachineParams m{cfg.memory_latency, cfg.memory_bandwidth_gap};
  uint64_t measured = RunBaseline(w, cfg);
  uint64_t predicted = model::BaselineCycles(Costs(), m, kN);
  // Fully exposed cold misses: the model should be nearly exact.
  ExpectWithin(measured, predicted, 0.05);
}

class GroupCrosscheck : public ::testing::TestWithParam<uint32_t> {};

TEST_P(GroupCrosscheck, PredictionWithinTolerance) {
  SyntheticWorkload w(2);
  sim::SimConfig cfg = CrosscheckConfig();
  model::MachineParams m{cfg.memory_latency, cfg.memory_bandwidth_gap};
  uint32_t g = GetParam();
  uint64_t measured = RunGroup(w, cfg, g);
  uint64_t predicted = model::GroupPrefetchModel::CriticalPathCycles(
      Costs(), m, g, kN, cfg.cost_prefetch_issue);
  // Cache-set conflicts and MSHR effects are outside the model; allow
  // a modest band.
  ExpectWithin(measured, predicted, 0.20);
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, GroupCrosscheck,
                         ::testing::Values(2, 4, 8, 16, 32));

class SwpCrosscheck : public ::testing::TestWithParam<uint32_t> {};

TEST_P(SwpCrosscheck, PredictionWithinTolerance) {
  SyntheticWorkload w(3);
  sim::SimConfig cfg = CrosscheckConfig();
  model::MachineParams m{cfg.memory_latency, cfg.memory_bandwidth_gap};
  uint32_t d = GetParam();
  uint64_t measured = RunSwp(w, cfg, d);
  uint64_t predicted = model::SwpPrefetchModel::CriticalPathCycles(
      Costs(), m, d, kN, cfg.cost_prefetch_issue);
  ExpectWithin(measured, predicted, 0.20);
}

INSTANTIATE_TEST_SUITE_P(Distances, SwpCrosscheck,
                         ::testing::Values(1, 2, 4, 8));

TEST(ModelSimCrosscheck, FeasibleGroupHidesLatencyInSimulatorToo) {
  SyntheticWorkload w(4);
  sim::SimConfig cfg = CrosscheckConfig();
  model::MachineParams m{cfg.memory_latency, cfg.memory_bandwidth_gap};
  uint32_t gmin = model::GroupPrefetchModel::MinGroupSize(Costs(), m);
  ASSERT_GT(gmin, 0u);
  uint64_t at_min = RunGroup(w, cfg, gmin);
  uint64_t baseline = RunBaseline(w, cfg);
  // With Theorem 1 satisfied the simulator should also show latencies
  // (mostly) hidden: a large speedup over the exposed baseline.
  EXPECT_GT(baseline, at_min * 2);
}

}  // namespace
}  // namespace hashjoin
