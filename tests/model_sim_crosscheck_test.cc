// Cross-validation of the generalized models (§4.2/§5.1) against the
// memory-hierarchy simulator: a synthetic workload of N independent
// elements, each making k dependent memory references split by code
// stages (exactly Figure 3(c)'s structure), is executed through the
// simulator with the baseline, group-prefetching, and software-pipelined
// loop shapes, and the measured cycles are compared with the models'
// critical-path predictions.

#include <vector>

#include "gtest/gtest.h"
#include "mem/memory_model.h"
#include "model/cost_model.h"
#include "simcache/memory_sim.h"
#include "util/aligned.h"
#include "util/bitops.h"
#include "util/random.h"

#if HASHJOIN_HAS_COROUTINES
#include "join/coro_kernels.h"
#endif

namespace hashjoin {
namespace {

constexpr uint32_t kK = 3;        // dependent references per element
constexpr uint64_t kN = 4096;     // elements
constexpr uint32_t kLine = 64;

// A memory area per reference level, with a random permutation so the
// access stream has no spatial locality; every line is touched exactly
// once, so every reference is a cold miss — the model's assumption.
struct SyntheticWorkload {
  std::vector<AlignedBuffer<uint8_t>> areas;
  std::vector<std::vector<uint32_t>> perms;

  explicit SyntheticWorkload(uint64_t seed) {
    Rng rng(seed);
    for (uint32_t l = 0; l < kK; ++l) {
      areas.push_back(MakeAlignedBuffer<uint8_t>(kN * kLine, kLine));
      std::vector<uint32_t> perm(kN);
      for (uint32_t i = 0; i < kN; ++i) perm[i] = i;
      rng.Shuffle(&perm);
      perms.push_back(std::move(perm));
    }
  }

  const uint8_t* Addr(uint32_t level, uint64_t element) const {
    return areas[level].get() + uint64_t(perms[level][element]) * kLine;
  }
};

// Simulator config with TLB and branch effects disabled, isolating the
// cache/latency/bandwidth behaviour the models describe.
sim::SimConfig CrosscheckConfig() {
  sim::SimConfig cfg;
  cfg.dtlb_entries = 4096;
  cfg.tlb_miss_latency = 0;
  return cfg;
}

model::CodeCosts Costs() { return model::CodeCosts{{30, 12, 10, 25}}; }

uint64_t RunBaseline(const SyntheticWorkload& w, const sim::SimConfig& cfg) {
  sim::MemorySim sim(cfg);
  const auto costs = Costs();
  for (uint64_t i = 0; i < kN; ++i) {
    sim.Busy(costs.c[0]);
    for (uint32_t l = 0; l < kK; ++l) {
      sim.Access(w.Addr(l, i), 8, false);
      sim.Busy(costs.c[l + 1]);
    }
  }
  return sim.stats().TotalCycles();
}

uint64_t RunGroup(const SyntheticWorkload& w, const sim::SimConfig& cfg,
                  uint32_t group) {
  sim::MemorySim sim(cfg);
  const auto costs = Costs();
  for (uint64_t j = 0; j < kN; j += group) {
    uint64_t end = std::min(kN, j + group);
    // Stage 0: code 0 + prefetch m1 (the issue cost is charged by the
    // simulator's Prefetch).
    for (uint64_t i = j; i < end; ++i) {
      sim.Busy(costs.c[0]);
      sim.Prefetch(w.Addr(0, i), 8);
    }
    // Stages 1..k: visit m_l, run code l, prefetch m_{l+1}.
    for (uint32_t l = 0; l < kK; ++l) {
      for (uint64_t i = j; i < end; ++i) {
        sim.Access(w.Addr(l, i), 8, false);
        sim.Busy(costs.c[l + 1]);
        if (l + 1 < kK) sim.Prefetch(w.Addr(l + 1, i), 8);
      }
    }
  }
  return sim.stats().TotalCycles();
}

uint64_t RunSwp(const SyntheticWorkload& w, const sim::SimConfig& cfg,
                uint32_t d) {
  sim::MemorySim sim(cfg);
  const auto costs = Costs();
  uint64_t last = (kN - 1) + uint64_t(kK) * d;
  for (uint64_t j = 0; j <= last; ++j) {
    if (j < kN) {
      sim.Busy(costs.c[0]);
      sim.Prefetch(w.Addr(0, j), 8);
    }
    for (uint32_t l = 1; l <= kK; ++l) {
      uint64_t delay = uint64_t(l) * d;
      if (j < delay || j - delay >= kN) continue;
      uint64_t e = j - delay;
      sim.Access(w.Addr(l - 1, e), 8, false);
      sim.Busy(costs.c[l]);
      if (l < kK) sim.Prefetch(w.Addr(l, e), 8);
    }
  }
  return sim.stats().TotalCycles();
}

void ExpectWithin(uint64_t measured, uint64_t predicted, double rel_tol) {
  double lo = double(predicted) * (1.0 - rel_tol);
  double hi = double(predicted) * (1.0 + rel_tol);
  EXPECT_GE(double(measured), lo)
      << "measured " << measured << " vs predicted " << predicted;
  EXPECT_LE(double(measured), hi)
      << "measured " << measured << " vs predicted " << predicted;
}

TEST(ModelSimCrosscheck, BaselinePredictionTight) {
  SyntheticWorkload w(1);
  sim::SimConfig cfg = CrosscheckConfig();
  model::MachineParams m{cfg.memory_latency, cfg.memory_bandwidth_gap};
  uint64_t measured = RunBaseline(w, cfg);
  uint64_t predicted = model::BaselineCycles(Costs(), m, kN);
  // Fully exposed cold misses: the model should be nearly exact.
  ExpectWithin(measured, predicted, 0.05);
}

class GroupCrosscheck : public ::testing::TestWithParam<uint32_t> {};

TEST_P(GroupCrosscheck, PredictionWithinTolerance) {
  SyntheticWorkload w(2);
  sim::SimConfig cfg = CrosscheckConfig();
  model::MachineParams m{cfg.memory_latency, cfg.memory_bandwidth_gap};
  uint32_t g = GetParam();
  uint64_t measured = RunGroup(w, cfg, g);
  uint64_t predicted = model::GroupPrefetchModel::CriticalPathCycles(
      Costs(), m, g, kN, cfg.cost_prefetch_issue);
  // Cache-set conflicts and MSHR effects are outside the model; allow
  // a modest band.
  ExpectWithin(measured, predicted, 0.20);
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, GroupCrosscheck,
                         ::testing::Values(2, 4, 8, 16, 32));

class SwpCrosscheck : public ::testing::TestWithParam<uint32_t> {};

TEST_P(SwpCrosscheck, PredictionWithinTolerance) {
  SyntheticWorkload w(3);
  sim::SimConfig cfg = CrosscheckConfig();
  model::MachineParams m{cfg.memory_latency, cfg.memory_bandwidth_gap};
  uint32_t d = GetParam();
  uint64_t measured = RunSwp(w, cfg, d);
  uint64_t predicted = model::SwpPrefetchModel::CriticalPathCycles(
      Costs(), m, d, kN, cfg.cost_prefetch_issue);
  ExpectWithin(measured, predicted, 0.20);
}

INSTANTIATE_TEST_SUITE_P(Distances, SwpCrosscheck,
                         ::testing::Values(1, 2, 4, 8));

#if HASHJOIN_HAS_COROUTINES

// W coroutine chains over strided elements, resumed round-robin, run in
// lockstep: sweep s executes stage s of every chain, which is exactly
// group prefetching with G = W. The group model therefore predicts the
// coro pipeline's cycles once the scheduler's per-resume overhead
// (cost_stage_overhead_coro × resumes) is added on top.
uint64_t RunCoroRoundRobin(const SyntheticWorkload& w,
                           const sim::SimConfig& cfg, uint32_t width,
                           uint64_t* resumes_out) {
  sim::MemorySim sim(cfg);
  const auto costs = Costs();
  uint64_t resumes = 0;
  RunCoroPipeline(sim, width, [&](uint32_t chain) {
    return [](sim::MemorySim& sim, const SyntheticWorkload& w,
              const model::CodeCosts& costs, uint32_t chain, uint32_t width,
              uint64_t* resumes) -> KernelCoro {
      ++*resumes;  // the first Resume() starts the lazily-created chain
      for (uint64_t i = chain; i < kN; i += width) {
        sim.Busy(costs.c[0]);
        sim.Prefetch(w.Addr(0, i), 8);
        co_await KernelCoro::NextStage{};
        ++*resumes;
        for (uint32_t l = 0; l < kK; ++l) {
          sim.Access(w.Addr(l, i), 8, false);
          sim.Busy(costs.c[l + 1]);
          if (l + 1 < kK) {
            sim.Prefetch(w.Addr(l + 1, i), 8);
            co_await KernelCoro::NextStage{};
            ++*resumes;
          }
        }
        // Stage k and the next element's stage 0 share a resume, as in
        // the probe chains' FINISHED transition.
      }
    }(sim, w, costs, chain, width, &resumes);
  });
  if (resumes_out != nullptr) *resumes_out = resumes;
  return sim.stats().TotalCycles();
}

class CoroCrosscheck : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CoroCrosscheck, GroupModelPlusResumeOverheadPredicts) {
  SyntheticWorkload w(5);
  sim::SimConfig cfg = CrosscheckConfig();
  model::MachineParams m{cfg.memory_latency, cfg.memory_bandwidth_gap};
  uint32_t width = GetParam();
  uint64_t resumes = 0;
  uint64_t measured = RunCoroRoundRobin(w, cfg, width, &resumes);
  uint64_t predicted =
      model::GroupPrefetchModel::CriticalPathCycles(
          Costs(), m, width, kN, cfg.cost_prefetch_issue) +
      resumes * cfg.cost_stage_overhead_coro;
  if (width >= model::GroupPrefetchModel::MinGroupSize(Costs(), m)) {
    ExpectWithin(measured, predicted, 0.20);
  } else {
    // Below Theorem 1's minimum width the group model charges exposed
    // latency between groups, but the chains pipeline across group
    // boundaries (a chain's last stage and its next element's stage 0
    // share a resume), so the coro loop can only beat the prediction.
    EXPECT_LE(double(measured), double(predicted) * 1.20)
        << "measured " << measured << " vs predicted " << predicted;
  }
}

// Widths divide kN so the chains stay in lockstep to the last sweep.
INSTANTIATE_TEST_SUITE_P(Widths, CoroCrosscheck,
                         ::testing::Values(4, 8, 16, 32));

#endif  // HASHJOIN_HAS_COROUTINES

TEST(ModelSimCrosscheck, FeasibleGroupHidesLatencyInSimulatorToo) {
  SyntheticWorkload w(4);
  sim::SimConfig cfg = CrosscheckConfig();
  model::MachineParams m{cfg.memory_latency, cfg.memory_bandwidth_gap};
  uint32_t gmin = model::GroupPrefetchModel::MinGroupSize(Costs(), m);
  ASSERT_GT(gmin, 0u);
  uint64_t at_min = RunGroup(w, cfg, gmin);
  uint64_t baseline = RunBaseline(w, cfg);
  // With Theorem 1 satisfied the simulator should also show latencies
  // (mostly) hidden: a large speedup over the exposed baseline.
  EXPECT_GT(baseline, at_min * 2);
}

}  // namespace
}  // namespace hashjoin
